// Package schema implements the Cornflakes schema compiler front end: a
// parser for the Protobuf schema language subset the paper's prototype
// supports (§3, §4 — "a developer defines a data structure schema ... using
// Protobuf's existing schema language"), plus the Go code generator used by
// cmd/cfc.
//
// Supported syntax:
//
//	syntax = "proto3";          // optional
//	package name;               // optional
//	// comments and /* block comments */
//	message Name {
//	    uint64 id = 1;
//	    repeated bytes keys = 2;
//	    string label = 3;
//	    Other nested = 4;       // message types may be declared later
//	    repeated Other list = 5;
//	}
//
// Scalar types: uint64, int64, uint32, int32 (all carried as 64-bit ints on
// the wire, like the Cornflakes header format), bytes, string.
package schema

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode"

	"cornflakes/internal/core"
)

// File is a parsed schema file.
type File struct {
	Package  string
	Messages []*MessageDef
}

// MessageDef is one message declaration.
type MessageDef struct {
	Name   string
	Fields []FieldDef
}

// FieldDef is one field declaration.
type FieldDef struct {
	Name     string
	TypeName string // "uint64", "bytes", "string", or a message name
	Repeated bool
	Number   int
}

// ParseError carries the line of a syntax error.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("schema: line %d: %s", e.Line, e.Msg) }

type token struct {
	text string
	line int
}

// lex splits input into identifier/number/punctuation/string tokens,
// dropping comments.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, &ParseError{Line: line, Msg: "unterminated block comment"}
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\n' {
					return nil, &ParseError{Line: line, Msg: "unterminated string"}
				}
				j++
			}
			if j >= len(src) {
				return nil, &ParseError{Line: line, Msg: "unterminated string"}
			}
			toks = append(toks, token{text: src[i : j+1], line: line})
			i = j + 1
		case strings.ContainsRune("{}=;", rune(c)):
			toks = append(toks, token{text: string(c), line: line})
			i++
		case unicode.IsLetter(rune(c)) || c == '_' || unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '.') {
				j++
			}
			toks = append(toks, token{text: src[i:j], line: line})
			i = j
		default:
			return nil, &ParseError{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *parser) expect(text string) error {
	t, ok := p.next()
	if !ok {
		return &ParseError{Line: p.lastLine(), Msg: fmt.Sprintf("expected %q, got end of file", text)}
	}
	if t.text != text {
		return &ParseError{Line: t.line, Msg: fmt.Sprintf("expected %q, got %q", text, t.text)}
	}
	return nil
}

func (p *parser) lastLine() int {
	if len(p.toks) == 0 {
		return 1
	}
	return p.toks[len(p.toks)-1].line
}

// Parse parses a schema file.
func Parse(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for {
		t, ok := p.peek()
		if !ok {
			break
		}
		switch t.text {
		case "syntax":
			p.next()
			if err := p.expect("="); err != nil {
				return nil, err
			}
			v, ok := p.next()
			if !ok || (v.text != `"proto3"` && v.text != `"proto2"`) {
				return nil, &ParseError{Line: t.line, Msg: "syntax must be \"proto3\""}
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		case "package":
			p.next()
			name, ok := p.next()
			if !ok {
				return nil, &ParseError{Line: t.line, Msg: "missing package name"}
			}
			f.Package = name.text
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		case "message":
			m, err := p.parseMessage()
			if err != nil {
				return nil, err
			}
			f.Messages = append(f.Messages, m)
		default:
			return nil, &ParseError{Line: t.line, Msg: fmt.Sprintf("unexpected token %q", t.text)}
		}
	}
	if len(f.Messages) == 0 {
		return nil, &ParseError{Line: 1, Msg: "no message declarations"}
	}
	return f, nil
}

func (p *parser) parseMessage() (*MessageDef, error) {
	p.next() // "message"
	nameTok, ok := p.next()
	if !ok || !isIdent(nameTok.text) {
		return nil, &ParseError{Line: nameTok.line, Msg: "invalid message name"}
	}
	m := &MessageDef{Name: nameTok.text}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok {
			return nil, &ParseError{Line: p.lastLine(), Msg: "unterminated message"}
		}
		if t.text == "}" {
			p.next()
			break
		}
		fd, err := p.parseField()
		if err != nil {
			return nil, err
		}
		m.Fields = append(m.Fields, fd)
	}
	if len(m.Fields) == 0 {
		return nil, &ParseError{Line: nameTok.line, Msg: fmt.Sprintf("message %s has no fields", m.Name)}
	}
	// Order fields by field number, which defines wire position.
	sort.SliceStable(m.Fields, func(i, j int) bool { return m.Fields[i].Number < m.Fields[j].Number })
	seen := map[int]bool{}
	names := map[string]bool{}
	for _, fd := range m.Fields {
		if seen[fd.Number] {
			return nil, &ParseError{Line: nameTok.line, Msg: fmt.Sprintf("message %s reuses field number %d", m.Name, fd.Number)}
		}
		if names[fd.Name] {
			return nil, &ParseError{Line: nameTok.line, Msg: fmt.Sprintf("message %s reuses field name %s", m.Name, fd.Name)}
		}
		seen[fd.Number] = true
		names[fd.Name] = true
	}
	return m, nil
}

func (p *parser) parseField() (FieldDef, error) {
	var fd FieldDef
	t, _ := p.next()
	if t.text == "repeated" {
		fd.Repeated = true
		t2, ok := p.next()
		if !ok {
			return fd, &ParseError{Line: t.line, Msg: "missing type after repeated"}
		}
		t = t2
	}
	if !isIdent(t.text) {
		return fd, &ParseError{Line: t.line, Msg: fmt.Sprintf("invalid type %q", t.text)}
	}
	fd.TypeName = t.text
	nameTok, ok := p.next()
	if !ok || !isIdent(nameTok.text) {
		return fd, &ParseError{Line: t.line, Msg: "invalid field name"}
	}
	fd.Name = nameTok.text
	if err := p.expect("="); err != nil {
		return fd, err
	}
	numTok, ok := p.next()
	if !ok {
		return fd, &ParseError{Line: t.line, Msg: "missing field number"}
	}
	n, err := strconv.Atoi(numTok.text)
	if err != nil || n <= 0 {
		return fd, &ParseError{Line: numTok.line, Msg: fmt.Sprintf("invalid field number %q", numTok.text)}
	}
	fd.Number = n
	if err := p.expect(";"); err != nil {
		return fd, err
	}
	return fd, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if !(unicode.IsLetter(r) || r == '_' || (i > 0 && unicode.IsDigit(r))) {
			return false
		}
	}
	return true
}

// scalarKinds maps proto scalar types to core kinds.
var scalarKinds = map[string]core.FieldKind{
	"uint64": core.KindInt,
	"int64":  core.KindInt,
	"uint32": core.KindInt,
	"int32":  core.KindInt,
	"bytes":  core.KindBytes,
	"string": core.KindString,
}

// Resolve type-checks the file and builds core.Schema values for every
// message, resolving message-type references (forward references allowed).
func (f *File) Resolve() (map[string]*core.Schema, error) {
	schemas := map[string]*core.Schema{}
	for _, m := range f.Messages {
		if schemas[m.Name] != nil {
			return nil, fmt.Errorf("schema: duplicate message %s", m.Name)
		}
		schemas[m.Name] = &core.Schema{Name: m.Name}
	}
	for _, m := range f.Messages {
		s := schemas[m.Name]
		for _, fd := range m.Fields {
			var field core.Field
			field.Name = fd.Name
			if kind, ok := scalarKinds[fd.TypeName]; ok {
				field.Kind = kind
				if fd.Repeated {
					switch kind {
					case core.KindInt:
						field.Kind = core.KindIntList
					case core.KindBytes:
						field.Kind = core.KindBytesList
					case core.KindString:
						field.Kind = core.KindStringList
					}
				}
			} else if sub, ok := schemas[fd.TypeName]; ok {
				field.Nested = sub
				if fd.Repeated {
					field.Kind = core.KindNestedList
				} else {
					field.Kind = core.KindNested
				}
			} else {
				return nil, fmt.Errorf("schema: message %s field %s has unknown type %s", m.Name, fd.Name, fd.TypeName)
			}
			s.Fields = append(s.Fields, field)
		}
	}
	// Validate only after every message's fields are populated, so forward
	// references check out.
	for _, m := range f.Messages {
		if err := schemas[m.Name].Validate(); err != nil {
			return nil, err
		}
	}
	return schemas, nil
}
