package schema

import (
	"go/format"
	"os"
	"testing"
)

// The checked-in generated code must match what the current generator
// produces from the checked-in schema — guarding against silent drift
// between cmd/cfc and internal/msgs/kv.gen.go.
func TestGeneratedKVMessagesAreCurrent(t *testing.T) {
	src, err := os.ReadFile("../msgs/kv.proto")
	if err != nil {
		t.Fatalf("read schema: %v", err)
	}
	f, err := Parse(string(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	code, err := Generate(f, "msgs")
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	want, err := format.Source([]byte(code))
	if err != nil {
		t.Fatalf("format: %v", err)
	}
	got, err := os.ReadFile("../msgs/kv.gen.go")
	if err != nil {
		t.Fatalf("read generated file: %v", err)
	}
	if string(got) != string(want) {
		t.Error("internal/msgs/kv.gen.go is stale; regenerate with:\n" +
			"  go run ./cmd/cfc -in internal/msgs/kv.proto -out internal/msgs/kv.gen.go -pkg msgs")
	}
}
