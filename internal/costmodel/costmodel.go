// Package costmodel converts the operations the Cornflakes stack performs —
// copies, metadata accesses, descriptor posts, allocations — into CPU
// cycles on a calibrated core model, and cycles into virtual time.
//
// This is the boundary between the functionally real layer (serializers
// that move real bytes) and the simulated hardware substrate: functional
// code calls Meter methods as it works, and the meter consults the cache
// hierarchy for every data and metadata touch, so effects like "the second
// copy is cheap because its source is cached" (§2.2) and "each access to
// uncached metadata consumes 15–23% of packet processing time" (§2.3)
// emerge from cache state rather than being hard-coded.
package costmodel

import (
	"cornflakes/internal/cachesim"
	"cornflakes/internal/mem"
	"cornflakes/internal/sim"
)

// CPU describes the core the server runs on, calibrated against the
// paper's testbed (AMD EPYC 7402P, 2.8 GHz; §6.1.1).
type CPU struct {
	FreqGHz float64

	// Copy costs. A memcpy pays a fixed setup plus a per-byte ALU/SIMD cost;
	// cache-line fills for source reads and destination write-allocates are
	// charged separately through the cache model.
	CopySetupCy   float64
	CopyPerByteCy float64

	// Allocation costs. Arena allocation is a bump pointer; heap allocation
	// models a general-purpose malloc (used by baselines without arenas).
	ArenaAllocCy float64
	HeapAllocCy  float64

	// SGPostCy is the CPU cost of adding one extra scatter-gather entry to
	// a transmit descriptor: formatting the entry and the amortized
	// doorbell/ring bookkeeping (§5.3 "the ring buffer API").
	SGPostCy float64

	// RegistryLookupCy is the pinned-region lookup inside RecoverPtr: "a
	// map lookup and fast arithmetic operation" (§3.2.2). The refcount
	// access it leads to is charged separately through the cache.
	RegistryLookupCy float64

	// HashProbeCy is the fixed arithmetic of one hash-table probe in the
	// KV store (hashing plus compare), excluding the memory touches.
	HashProbeCy float64

	// PerFieldCy is the fixed serialization bookkeeping per field (branching,
	// bitmap updates, size accounting) common to all code paths.
	PerFieldCy float64

	// UTF8ValidateCyPerByte is the cost of UTF-8 validation, which the
	// baselines pay at deserialization time and Cornflakes defers (§6.4).
	UTF8ValidateCyPerByte float64

	// VarintCyPerByte is the extra encode/decode cost for Protobuf-style
	// varint integers.
	VarintCyPerByte float64

	// SyscallFreeCy models releasing one packet buffer / descriptor
	// completion.
	CompletionCy float64

	// RxPacketCy is the fixed receive-path cost per packet: RX descriptor
	// processing, buffer accounting, and packet header parsing in the
	// kernel-bypass poll loop.
	RxPacketCy float64

	// RxPollCy is the share of RxPacketCy that belongs to the poll-loop
	// iteration itself — the rx_burst call, ring tail read, and RX
	// descriptor refill doorbell — rather than to any one packet. The
	// unbatched datapath pays it per packet (it is folded into RxPacketCy,
	// whose calibration is unchanged); the batched RX path charges
	// RxPacketCy−RxPollCy per frame and RxPollCy once per drained burst,
	// so the share amortizes across the burst. Must stay ≤ RxPacketCy.
	RxPollCy float64

	// TxDescCy is the fixed transmit cost per packet: base descriptor
	// formatting and the amortized doorbell write. Each scatter-gather
	// entry beyond the first adds SGPostCy.
	TxDescCy float64

	// TxDoorbellCy is the share of TxDescCy that is the doorbell MMIO
	// write (sfence + posted PCIe write). The unbatched datapath pays it
	// per packet inside TxDescCy; batched TX charges TxDescCy−TxDoorbellCy
	// per queued frame and TxDoorbellCy once per flushed chunk. Must stay
	// ≤ TxDescCy.
	TxDoorbellCy float64

	// DMABufAllocCy is the cost of taking a pinned transmit buffer from
	// the allocator free list.
	DMABufAllocCy float64

	// PktHeaderCy is the cost of composing the 42-byte Ethernet/IP/UDP
	// header (plus TCP state updates for TCP sends).
	PktHeaderCy float64
}

// DefaultCPU returns the calibrated 2.8 GHz core model.
func DefaultCPU() CPU {
	return CPU{
		FreqGHz:       2.8,
		CopySetupCy:   20,
		CopyPerByteCy: 0.03, // ~32 B/cycle SIMD copy
		ArenaAllocCy:  8,
		HeapAllocCy:   40,
		// SGPostCy is the raw descriptor-entry write — cheap, which is why
		// raw scatter-gather beats copying even for 64-byte buffers
		// (Fig. 3). RegistryLookupCy and CompletionCy are the software
		// safety/transparency costs; they are calibrated, not derived — the
		// paper likewise measures the threshold empirically because these
		// codepaths resist analytical modelling (§5.3). Together with the
		// refcount metadata cache accesses they place the copy/zero-copy
		// crossover between 256 B and 512 B fields, matching Figures 3 and
		// 5: copy wins at 256 B and below, scatter-gather at 512 B and up.
		SGPostCy:              25,
		RegistryLookupCy:      70,
		HashProbeCy:           18,
		PerFieldCy:            10,
		UTF8ValidateCyPerByte: 0.5,
		VarintCyPerByte:       2.0,
		CompletionCy:          70,
		// RxPacketCy + TxDescCy are calibrated so a no-serialization echo
		// of a 4 KB object costs ≈420 ns of core time — the 77 Gbps
		// single-core ceiling in Figure 2. The poll/doorbell shares inside
		// them (amortized by the batched datapath) follow DPDK-style
		// breakdowns: roughly half of the fixed RX cost is the burst-poll
		// iteration and ring refill, and a bit over half of the fixed TX
		// cost is the fenced doorbell write.
		RxPacketCy:    550,
		RxPollCy:      250,
		TxDescCy:      400,
		TxDoorbellCy:  250,
		DMABufAllocCy: 15,
		PktHeaderCy:   15,
	}
}

// Cycles converts a cycle count into virtual time on this CPU.
func (c CPU) Cycles(cy float64) sim.Time {
	return sim.Time(cy / c.FreqGHz * 1000) // cycles / (cycles/ns) → ns → ps
}

// Category labels where cycles were spent, for the Figure 11 breakdown.
type Category int

const (
	CatRx Category = iota
	CatDeserialize
	CatApp
	CatSerialize
	CatTx
	// CatShed captures the cycles of admission-control rejections: peeking
	// the request id and transmitting the prebuilt shed reply. Without it,
	// shed work lands in whatever category was last active and corrupts the
	// Fig 11-style breakdown precisely in the overload regime where shedding
	// dominates.
	CatShed
	CatOther
	NumCategories
)

func (c Category) String() string {
	switch c {
	case CatRx:
		return "rx"
	case CatDeserialize:
		return "deserialize"
	case CatApp:
		return "app"
	case CatSerialize:
		return "serialize"
	case CatTx:
		return "tx"
	case CatShed:
		return "shed"
	default:
		return "other"
	}
}

// Receipt is a per-request snapshot of cycles by category.
type Receipt struct {
	Cycles [NumCategories]float64
}

// Total returns the summed cycles across categories.
func (r Receipt) Total() float64 {
	t := 0.0
	for _, c := range r.Cycles {
		t += c
	}
	return t
}

// Add accumulates other into r.
func (r *Receipt) Add(other Receipt) {
	for i := range r.Cycles {
		r.Cycles[i] += other.Cycles[i]
	}
}

// Scale divides every category by n (for averaging).
func (r *Receipt) Scale(n float64) {
	if n == 0 {
		return
	}
	for i := range r.Cycles {
		r.Cycles[i] /= n
	}
}

// Meter accumulates cycle charges for one core. All functional code on that
// core shares the meter; the owning event loop drains it into service time.
type Meter struct {
	CPU   CPU
	Cache *cachesim.Hierarchy

	cat     Category
	pending float64 // cycles charged since the last Drain
	receipt Receipt // cycles since the last TakeReceipt

	allocCursor uint64 // bump cursor for AllocSimAddr scratch addresses

	// Counters for analysis.
	BytesCopied    uint64
	MetadataTouch  uint64
	MetadataMisses uint64
	SGEntriesPosts uint64
}

// NewMeter builds a meter over the given CPU and cache hierarchy.
func NewMeter(cpu CPU, cache *cachesim.Hierarchy) *Meter {
	return &Meter{CPU: cpu, Cache: cache}
}

// AllocSimAddr returns a deterministic simulated address for a fresh heap
// chunk of the given size, advancing a per-meter bump cursor over a
// 256 MiB scratch window. Chunks are cache-line aligned, so every fresh
// allocation starts on cold lines — like the spread heap addresses a real
// allocator hands back — while being reproducible across runs, which real
// heap addresses are not (feeding those to the cache model made cycle
// counts jitter between otherwise identical runs). The cursor recycles
// only after a full window wrap, ~16× L3, long past residency. Buffers
// that mutate in place keep the address assigned at allocation.
func (m *Meter) AllocSimAddr(size int) uint64 {
	const window = 256 << 20
	// Round up to whole lines, plus one guard line between chunks: real
	// allocators interleave headers and freed blocks, so back-to-back
	// allocations are not line-adjacent. Without the gap, consecutive
	// requests' fresh chunks form one long sequential line stream and the
	// cache model's stream-prefetch detector hides their DRAM fills —
	// cold destinations that should cost full misses stream in nearly
	// free, inflating baseline throughput.
	sz := ((uint64(size)+63)&^63 + 64)
	if m.allocCursor+sz > window {
		m.allocCursor = 0
	}
	a := mem.SimScratchBase + m.allocCursor
	m.allocCursor += sz
	return a
}

// SetCategory routes subsequent charges to the given category and returns
// the previous one so callers can restore it.
func (m *Meter) SetCategory(c Category) Category {
	prev := m.cat
	m.cat = c
	return prev
}

// Charge adds raw cycles to the current category.
func (m *Meter) Charge(cy float64) {
	m.pending += cy
	m.receipt.Cycles[m.cat] += cy
}

// Access touches n bytes at the simulated address, charging cache costs.
func (m *Meter) Access(simAddr uint64, n int) {
	cy, _ := m.Cache.AccessRange(simAddr, n)
	m.Charge(cy)
}

// AccessWord touches a single word (one line) and reports whether it missed
// to DRAM.
func (m *Meter) AccessWord(simAddr uint64) cachesim.HitLevel {
	lvl, cy := m.Cache.Access(simAddr)
	m.Charge(cy)
	return lvl
}

// MetadataAccess touches a metadata word (refcount, registry node) and
// records metadata-miss statistics.
func (m *Meter) MetadataAccess(simAddr uint64) {
	m.MetadataTouch++
	if m.AccessWord(simAddr) == cachesim.HitDRAM {
		m.MetadataMisses++
	}
}

// Copy charges a memcpy of n bytes from srcSim to dstSim: fixed setup,
// per-byte SIMD cost, a cached/uncached source read and a write-allocate of
// the destination — all through the cache model.
func (m *Meter) Copy(srcSim, dstSim uint64, n int) {
	if n <= 0 {
		return
	}
	m.BytesCopied += uint64(n)
	m.Charge(m.CPU.CopySetupCy + float64(n)*m.CPU.CopyPerByteCy)
	m.Access(srcSim, n)
	m.Access(dstSim, n)
}

// SGPost charges posting one extra scatter-gather descriptor entry.
func (m *Meter) SGPost() {
	m.SGEntriesPosts++
	m.Charge(m.CPU.SGPostCy)
}

// Drain returns the cycles accumulated since the previous Drain and resets
// the pending counter. Core event loops call this once per request to turn
// metered work into service time.
func (m *Meter) Drain() float64 {
	cy := m.pending
	m.pending = 0
	return cy
}

// DrainTime is Drain converted to virtual time.
func (m *Meter) DrainTime() sim.Time { return m.CPU.Cycles(m.Drain()) }

// TakeReceipt returns the per-category cycles accumulated since the last
// TakeReceipt and resets the receipt.
func (m *Meter) TakeReceipt() Receipt {
	r := m.receipt
	m.receipt = Receipt{}
	return r
}
