package costmodel

import (
	"testing"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/sim"
)

func newTestMeter() *Meter {
	return NewMeter(DefaultCPU(), cachesim.New(cachesim.DefaultConfig()))
}

func TestCyclesToTime(t *testing.T) {
	cpu := DefaultCPU()
	// 280 cycles at 2.8 GHz = 100 ns.
	if got := cpu.Cycles(280); got != 100*sim.Nanosecond {
		t.Errorf("Cycles(280) = %v, want 100ns", got)
	}
	if got := cpu.Cycles(0); got != 0 {
		t.Errorf("Cycles(0) = %v, want 0", got)
	}
}

func TestChargeAndDrain(t *testing.T) {
	m := newTestMeter()
	m.Charge(100)
	m.Charge(50)
	if got := m.Drain(); got != 150 {
		t.Errorf("Drain = %v, want 150", got)
	}
	if got := m.Drain(); got != 0 {
		t.Errorf("second Drain = %v, want 0", got)
	}
}

func TestDrainTime(t *testing.T) {
	m := newTestMeter()
	m.Charge(280)
	if got := m.DrainTime(); got != 100*sim.Nanosecond {
		t.Errorf("DrainTime = %v, want 100ns", got)
	}
}

func TestCategories(t *testing.T) {
	m := newTestMeter()
	m.SetCategory(CatDeserialize)
	m.Charge(10)
	prev := m.SetCategory(CatApp)
	if prev != CatDeserialize {
		t.Errorf("SetCategory returned %v, want CatDeserialize", prev)
	}
	m.Charge(20)
	r := m.TakeReceipt()
	if r.Cycles[CatDeserialize] != 10 || r.Cycles[CatApp] != 20 {
		t.Errorf("receipt = %+v", r)
	}
	if r.Total() != 30 {
		t.Errorf("Total = %v, want 30", r.Total())
	}
	// Receipt resets.
	if m.TakeReceipt().Total() != 0 {
		t.Error("receipt not reset")
	}
}

func TestReceiptAddScale(t *testing.T) {
	var a, b Receipt
	a.Cycles[CatRx] = 10
	b.Cycles[CatRx] = 30
	a.Add(b)
	if a.Cycles[CatRx] != 40 {
		t.Errorf("Add: got %v", a.Cycles[CatRx])
	}
	a.Scale(4)
	if a.Cycles[CatRx] != 10 {
		t.Errorf("Scale: got %v", a.Cycles[CatRx])
	}
	a.Scale(0) // must not divide by zero
}

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		CatRx: "rx", CatDeserialize: "deserialize", CatApp: "app",
		CatSerialize: "serialize", CatTx: "tx", CatOther: "other",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestCopyChargesCacheAndBytes(t *testing.T) {
	m := newTestMeter()
	m.Copy(0x1000, 0x200000, 512)
	cy := m.Drain()
	if cy <= 0 {
		t.Fatal("copy charged nothing")
	}
	if m.BytesCopied != 512 {
		t.Errorf("BytesCopied = %d", m.BytesCopied)
	}
	// A warm copy of the same range must be cheaper (both ranges cached).
	m.Copy(0x1000, 0x200000, 512)
	warm := m.Drain()
	if warm >= cy {
		t.Errorf("warm copy (%v cy) not cheaper than cold copy (%v cy)", warm, cy)
	}
}

func TestCopyZeroBytesFree(t *testing.T) {
	m := newTestMeter()
	m.Copy(0x1000, 0x2000, 0)
	if m.Drain() != 0 {
		t.Error("zero-byte copy charged cycles")
	}
}

func TestMetadataAccessCountsMisses(t *testing.T) {
	m := newTestMeter()
	m.MetadataAccess(0xF000000)
	if m.MetadataTouch != 1 || m.MetadataMisses != 1 {
		t.Errorf("cold metadata: touch=%d misses=%d", m.MetadataTouch, m.MetadataMisses)
	}
	m.MetadataAccess(0xF000000)
	if m.MetadataMisses != 1 {
		t.Errorf("warm metadata counted as miss")
	}
}

func TestSGPost(t *testing.T) {
	m := newTestMeter()
	m.SGPost()
	m.SGPost()
	if m.SGEntriesPosts != 2 {
		t.Errorf("SGEntriesPosts = %d", m.SGEntriesPosts)
	}
	if got := m.Drain(); got != 2*m.CPU.SGPostCy {
		t.Errorf("Drain = %v, want %v", got, 2*m.CPU.SGPostCy)
	}
}

// The central calibration property behind the paper's Figure 5: with a cold
// source buffer and cold metadata, the zero-copy bookkeeping path and the
// copy path cost about the same at 512-byte fields; copy is cheaper well
// below, zero-copy cheaper well above.
func TestCrossoverCalibration(t *testing.T) {
	cost := func(n int, zeroCopy bool) float64 {
		m := newTestMeter()
		dataAddr := uint64(0x10_0000_0000) // cold
		refAddr := uint64(0xF0_0000_0000)  // cold metadata
		arena := uint64(0x70_0000_0000)
		dma := uint64(0x20_0000_0000)
		// Warm the arena and DMA destinations: they are reused per request.
		m.Access(arena, n)
		m.Access(dma, n)
		m.Drain()
		if zeroCopy {
			m.Charge(m.CPU.RegistryLookupCy)
			m.MetadataAccess(refAddr) // refcount increment
			m.SGPost()                // extra descriptor entry
			m.MetadataAccess(refAddr) // completion decrement (likely warm)
			m.Charge(m.CPU.CompletionCy)
		} else {
			m.Charge(m.CPU.ArenaAllocCy)
			m.Copy(dataAddr, arena, n) // first copy: cold source
			m.Copy(arena, dma, n)      // second copy: cached source (§2.2)
		}
		return m.Drain()
	}
	for _, n := range []int{64, 128, 256} {
		if cost(n, false) >= cost(n, true) {
			t.Errorf("at %dB copy (%.0f cy) should beat zero-copy (%.0f cy)",
				n, cost(n, false), cost(n, true))
		}
	}
	for _, n := range []int{1024, 2048, 4096} {
		if cost(n, true) >= cost(n, false) {
			t.Errorf("at %dB zero-copy (%.0f cy) should beat copy (%.0f cy)",
				n, cost(n, true), cost(n, false))
		}
	}
	// At 512 the two should be within ~35% of each other (the crossover).
	c, z := cost(512, false), cost(512, true)
	ratio := c / z
	if ratio < 0.65 || ratio > 1.55 {
		t.Errorf("at 512B copy/zero-copy ratio = %.2f (copy %.0f, zc %.0f); want near 1", ratio, c, z)
	}
}
