package costmodel

import (
	"testing"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/mem"
)

// TestMeterChargeAllocFree pins 0 allocs on the meter's per-request hot
// path — charge, cache-modelled access, copy, receipt — once the cache
// model's set storage is warm. Every simulated request crosses this path
// several times, so an allocation here multiplies across the whole suite.
func TestMeterChargeAllocFree(t *testing.T) {
	m := NewMeter(DefaultCPU(), cachesim.New(cachesim.DefaultConfig()))
	src := uint64(mem.SimDataBase)
	dst := uint64(mem.SimScratchBase)
	work := func() {
		m.SetCategory(CatApp)
		m.Charge(100)
		m.Access(src, 2048)
		m.Copy(src, dst, 2048)
		m.MetadataAccess(src)
		m.SGPost()
		m.Drain()
		m.TakeReceipt()
	}
	// Warm the cache sets touched by these addresses.
	for i := 0; i < 8; i++ {
		work()
	}
	allocs := testing.AllocsPerRun(100, work)
	if allocs != 0 {
		t.Fatalf("meter hot path allocated %.2f allocs per request (want 0)", allocs)
	}
}

// TestCacheFillAllocFree pins the cache model's fill path: after a set has
// been materialized once, fills and evictions shift lines in place.
func TestCacheFillAllocFree(t *testing.T) {
	h := cachesim.New(cachesim.DefaultConfig())
	// Touch a strided range big enough to force evictions at every level.
	span := 64 << 20
	step := uint64(4096)
	addr := uint64(mem.SimDataBase)
	touch := func() {
		for a := addr; a < addr+uint64(span); a += step * 64 {
			h.Access(a)
		}
	}
	touch() // materialize all sets on the walk
	allocs := testing.AllocsPerRun(10, touch)
	if allocs != 0 {
		t.Fatalf("warm cache fills allocated %.2f allocs (want 0)", allocs)
	}
}
