package cachesim

import (
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	return Config{
		L1:            LevelConfig{Size: 1 << 10, Ways: 2, LatencyCy: 4},   // 8 sets
		L2:            LevelConfig{Size: 4 << 10, Ways: 4, LatencyCy: 14},  // 16 sets
		L3:            LevelConfig{Size: 16 << 10, Ways: 4, LatencyCy: 47}, // 64 sets
		DRAMLatencyCy: 280,
		StreamFillCy:  30,
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := New(smallConfig())
	lvl, c := h.Access(0x1000)
	if lvl != HitDRAM || c != 280 {
		t.Errorf("cold access = (%v, %v), want (DRAM, 280)", lvl, c)
	}
	lvl, c = h.Access(0x1000)
	if lvl != HitL1 || c != 4 {
		t.Errorf("warm access = (%v, %v), want (L1, 4)", lvl, c)
	}
	// Another address in the same line also hits.
	lvl, _ = h.Access(0x1000 + 63)
	if lvl != HitL1 {
		t.Errorf("same-line access hit %v, want L1", lvl)
	}
	// Next line misses.
	lvl, _ = h.Access(0x1000 + 64)
	if lvl != HitDRAM {
		t.Errorf("next-line access hit %v, want DRAM", lvl)
	}
}

func TestSequentialStreamDiscount(t *testing.T) {
	h := New(smallConfig())
	_, c0 := h.Access(0x10000)
	if c0 != 280 {
		t.Fatalf("first miss cost %v, want 280", c0)
	}
	_, c1 := h.Access(0x10000 + 64)
	if c1 != 30 {
		t.Errorf("sequential miss cost %v, want streamed 30", c1)
	}
	// A random far miss pays full latency again.
	_, c2 := h.Access(0x90000)
	if c2 != 280 {
		t.Errorf("non-sequential miss cost %v, want 280", c2)
	}
}

func TestLRUEvictionWithinSet(t *testing.T) {
	cfg := smallConfig()
	h := New(cfg)
	// L1: 8 sets, 2 ways. Addresses mapping to set 0 of L1 are multiples of
	// 8*64 = 512.
	a, b, c := uint64(0), uint64(512), uint64(1024)
	h.Access(a)
	h.Access(b)
	// Touch a so b becomes LRU.
	h.Access(a)
	h.Access(c) // evicts b from L1
	if h.Contains(a) != HitL1 {
		t.Error("a should still be in L1")
	}
	if h.Contains(c) != HitL1 {
		t.Error("c should be in L1 after fill")
	}
	if h.Contains(b) == HitL1 {
		t.Error("b should have been evicted from L1")
	}
	// b should still be in an outer level (fills went everywhere).
	if h.Contains(b) == HitDRAM {
		t.Error("b should remain cached in L2/L3")
	}
}

func TestL2AndL3Hits(t *testing.T) {
	cfg := smallConfig()
	h := New(cfg)
	// Fill L1 set 0 beyond capacity so the earliest line falls back to L2.
	lines := []uint64{0, 512, 1024} // all L1-set-0
	for _, a := range lines {
		h.Access(a)
	}
	// Line 0 was evicted from L1 (2 ways), should hit L2 now.
	lvl, cost := h.Access(0)
	if lvl != HitL2 || cost != 14 {
		t.Errorf("access = (%v, %v), want (L2, 14)", lvl, cost)
	}
}

func TestAccessRangeCountsLines(t *testing.T) {
	h := New(smallConfig())
	cycles, dram := h.AccessRange(0x40000, 256) // 4 lines, cold
	if dram != 4 {
		t.Errorf("dram lines = %d, want 4", dram)
	}
	// First line full latency + 3 streamed.
	want := 280.0 + 3*30
	if cycles != want {
		t.Errorf("cycles = %v, want %v", cycles, want)
	}
	// Warm re-read: all L1.
	cycles, dram = h.AccessRange(0x40000, 256)
	if dram != 0 || cycles != 4*4 {
		t.Errorf("warm range = (%v cycles, %d dram), want (16, 0)", cycles, dram)
	}
}

func TestAccessRangeUnalignedSpansExtraLine(t *testing.T) {
	h := New(smallConfig())
	// 64 bytes starting 32 bytes into a line touches two lines.
	_, dram := h.AccessRange(0x50020, 64)
	if dram != 2 {
		t.Errorf("dram lines = %d, want 2 for unaligned 64B", dram)
	}
}

func TestAccessRangeZeroAndNegative(t *testing.T) {
	h := New(smallConfig())
	if c, d := h.AccessRange(0x100, 0); c != 0 || d != 0 {
		t.Error("zero-length range should be free")
	}
	if c, d := h.AccessRange(0x100, -5); c != 0 || d != 0 {
		t.Error("negative range should be free")
	}
}

func TestWorkingSetLargerThanL3Misses(t *testing.T) {
	cfg := smallConfig()
	h := New(cfg)
	// Stream 5x L3 of data twice; second pass should still miss mostly
	// (capacity evictions), which is the §2.4 working-set effect.
	span := 5 * cfg.L3.Size
	h.AccessRange(0, span)
	h.Flush() // reset stream detector but also caches; instead measure fresh
	h = New(cfg)
	h.AccessRange(0, span)
	before := h.DRAMAccesses
	h.AccessRange(0, span)
	missesSecondPass := h.DRAMAccesses - before
	lines := uint64(span / LineSize)
	if missesSecondPass < lines*9/10 {
		t.Errorf("second pass over 5xL3 missed only %d of %d lines; want ~all", missesSecondPass, lines)
	}
}

func TestWorkingSetSmallerThanL1Hits(t *testing.T) {
	h := New(smallConfig())
	h.AccessRange(0, 512) // fits in L1 (1 KiB)
	before := h.DRAMAccesses
	h.AccessRange(0, 512)
	if h.DRAMAccesses != before {
		t.Error("resident working set should not miss to DRAM")
	}
}

func TestSharedL3(t *testing.T) {
	cfg := smallConfig()
	c0 := New(cfg)
	c1 := NewShared(cfg, c0)
	c0.Access(0x7000)
	// Core 1 misses its private L1/L2 but hits the shared L3.
	lvl, cost := c1.Access(0x7000)
	if lvl != HitL3 || cost != 47 {
		t.Errorf("cross-core access = (%v, %v), want (L3, 47)", lvl, cost)
	}
}

func TestFlushOwnership(t *testing.T) {
	cfg := smallConfig()
	c0 := New(cfg)
	c1 := NewShared(cfg, c0)
	c0.Access(0x8000)
	c1.Flush() // must NOT flush the shared L3 it doesn't own
	if c0.Contains(0x8000) == HitDRAM {
		t.Error("non-owner Flush cleared the shared L3")
	}
	c0.Flush()
	if c0.Contains(0x8000) != HitDRAM {
		t.Error("owner Flush did not clear L3")
	}
}

func TestStats(t *testing.T) {
	h := New(smallConfig())
	h.Access(0x100)
	h.Access(0x100)
	s := h.Stats()
	if s[0].Misses != 1 || s[0].Hits != 1 {
		t.Errorf("L1 stats = %+v, want 1 hit 1 miss", s[0])
	}
}

func TestHitLevelString(t *testing.T) {
	names := map[HitLevel]string{HitL1: "L1", HitL2: "L2", HitL3: "L3", HitDRAM: "DRAM"}
	for lvl, want := range names {
		if lvl.String() != want {
			t.Errorf("%d.String() = %q, want %q", lvl, lvl.String(), want)
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-way config did not panic")
		}
	}()
	New(Config{L1: LevelConfig{Size: 1024, Ways: 0}})
}

// Property: an address accessed twice in a row always hits L1 the second
// time, for any address.
func TestImmediateReuseHitsL1(t *testing.T) {
	h := New(smallConfig())
	f := func(addr uint64) bool {
		addr %= 1 << 40
		h.Access(addr)
		lvl, _ := h.Access(addr)
		return lvl == HitL1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Contains never reports a faster level than where an Access
// actually hits (Contains is conservative and LRU-neutral).
func TestContainsConsistentWithAccess(t *testing.T) {
	h := New(smallConfig())
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			addr := uint64(a)
			want := h.Contains(addr)
			got, _ := h.Access(addr)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.DRAMLatencyCy != 280 {
		t.Errorf("DRAM latency = %v cycles, want 280 (100ns at 2.8GHz)", cfg.DRAMLatencyCy)
	}
	h := New(cfg)
	if h.L3Size() != 16<<20 {
		t.Errorf("L3 size = %d, want 16 MiB", h.L3Size())
	}
}
