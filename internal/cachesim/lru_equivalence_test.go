package cachesim

import (
	"math/rand"
	"testing"
)

// This file retains the pre-stamp-LRU implementation — positional LRU with
// per-set MRU-ordered tag slices, exactly as cache.go had it before the
// flat tags[]/stamps[] rewrite — as a reference oracle. The property test
// below drives both implementations with identical randomized access
// streams and requires hit levels, costs, DRAM counts, per-level stats,
// and final residency to match exactly.
//
// Why equivalence holds: every hit and every fill in the stamp model
// assigns a fresh stamp from a per-level monotone counter, so stamps
// totally order the ways of a set by last touch; the minimum-stamp way is
// therefore the same way a positional LRU keeps at its list tail. Empty
// ways (stamp 0, counter starts above 0) are consumed before any eviction,
// matching the reference model's grow-until-full inserts.

type refLevel struct {
	cfg          LevelConfig
	sets         [][]uint64
	numSets      int
	hits, misses uint64
}

func newRefLevel(cfg LevelConfig) *refLevel {
	numSets := cfg.Size / (cfg.Ways * LineSize)
	if numSets <= 0 {
		numSets = 1
	}
	return &refLevel{cfg: cfg, sets: make([][]uint64, numSets), numSets: numSets}
}

func (l *refLevel) lookup(line uint64) bool {
	set := l.sets[l.setIndex(line)]
	for i, tag := range set {
		if tag == line {
			copy(set[1:i+1], set[:i])
			set[0] = line
			l.hits++
			return true
		}
	}
	l.misses++
	return false
}

func (l *refLevel) fill(line uint64) (uint64, bool) {
	idx := l.setIndex(line)
	set := l.sets[idx]
	if len(set) < l.cfg.Ways {
		if cap(set) < l.cfg.Ways {
			grown := make([]uint64, len(set), l.cfg.Ways)
			copy(grown, set)
			set = grown
		}
		set = set[:len(set)+1]
		copy(set[1:], set)
		set[0] = line
		l.sets[idx] = set
		return 0, false
	}
	victim := set[len(set)-1]
	copy(set[1:], set[:len(set)-1])
	set[0] = line
	return victim, true
}

func (l *refLevel) setIndex(line uint64) int {
	return int((line / LineSize) % uint64(l.numSets))
}

func (l *refLevel) contains(line uint64) bool {
	for _, tag := range l.sets[l.setIndex(line)] {
		if tag == line {
			return true
		}
	}
	return false
}

func (l *refLevel) flushAll() {
	for i := range l.sets {
		l.sets[i] = l.sets[i][:0]
	}
}

type refHierarchy struct {
	cfg          Config
	l1, l2, l3   *refLevel
	ownsL3       bool
	lastLine     uint64
	DRAMAccesses uint64
}

func newRef(cfg Config) *refHierarchy {
	return &refHierarchy{cfg: cfg, l1: newRefLevel(cfg.L1), l2: newRefLevel(cfg.L2), l3: newRefLevel(cfg.L3), ownsL3: true}
}

func newRefShared(cfg Config, base *refHierarchy) *refHierarchy {
	return &refHierarchy{cfg: cfg, l1: newRefLevel(cfg.L1), l2: newRefLevel(cfg.L2), l3: base.l3}
}

func (h *refHierarchy) Access(addr uint64) (HitLevel, float64) {
	line := addr &^ uint64(LineSize - 1)
	if h.l1.lookup(line) {
		return HitL1, h.cfg.L1.LatencyCy
	}
	if h.l2.lookup(line) {
		h.l1.fill(line)
		return HitL2, h.cfg.L2.LatencyCy
	}
	if h.l3.lookup(line) {
		h.l2.fill(line)
		h.l1.fill(line)
		return HitL3, h.cfg.L3.LatencyCy
	}
	h.DRAMAccesses++
	h.l3.fill(line)
	h.l2.fill(line)
	h.l1.fill(line)
	cost := h.cfg.DRAMLatencyCy
	if h.lastLine != 0 && line == h.lastLine+LineSize {
		cost = h.cfg.StreamFillCy
	}
	h.lastLine = line
	return HitDRAM, cost
}

func (h *refHierarchy) AccessRange(addr uint64, n int) (cycles float64, dramLines int) {
	if n <= 0 {
		return 0, 0
	}
	first := addr &^ uint64(LineSize - 1)
	last := (addr + uint64(n) - 1) &^ uint64(LineSize - 1)
	for line := first; ; line += LineSize {
		lvl, c := h.Access(line)
		cycles += c
		if lvl == HitDRAM {
			dramLines++
		}
		if line == last {
			break
		}
	}
	return cycles, dramLines
}

func (h *refHierarchy) Contains(addr uint64) HitLevel {
	line := addr &^ uint64(LineSize - 1)
	switch {
	case h.l1.contains(line):
		return HitL1
	case h.l2.contains(line):
		return HitL2
	case h.l3.contains(line):
		return HitL3
	default:
		return HitDRAM
	}
}

func (h *refHierarchy) Stats() [3]LevelStats {
	return [3]LevelStats{{h.l1.hits, h.l1.misses}, {h.l2.hits, h.l2.misses}, {h.l3.hits, h.l3.misses}}
}

func (h *refHierarchy) Flush() {
	h.l1.flushAll()
	h.l2.flushAll()
	if h.ownsL3 {
		h.l3.flushAll()
	}
	h.lastLine = 0
}

// equivalenceConfig is small enough that random streams force constant
// evictions at every level while still exercising three distinct
// geometries (different set counts and associativities, including a
// non-power-of-two set count in L2).
func equivalenceConfig() Config {
	return Config{
		L1:            LevelConfig{Size: 1 << 10, Ways: 2, LatencyCy: 4},   // 8 sets
		L2:            LevelConfig{Size: 6 << 10, Ways: 4, LatencyCy: 14},  // 24 sets (non-pow2)
		L3:            LevelConfig{Size: 32 << 10, Ways: 8, LatencyCy: 47}, // 64 sets
		DRAMLatencyCy: 280,
		StreamFillCy:  12,
	}
}

// drive applies one randomized operation to both models and fails on any
// divergence in hit level, cost, or DRAM line count.
func drive(t *testing.T, rng *rand.Rand, h *Hierarchy, r *refHierarchy, universe []uint64) {
	t.Helper()
	addr := universe[rng.Intn(len(universe))]
	switch op := rng.Intn(10); {
	case op < 6: // single access
		gl, gc := h.Access(addr)
		wl, wc := r.Access(addr)
		if gl != wl || gc != wc {
			t.Fatalf("Access(%#x): got (%v, %v), ref (%v, %v)", addr, gl, gc, wl, wc)
		}
	case op < 9: // range access, unaligned start and length
		n := 1 + rng.Intn(6*LineSize)
		off := uint64(rng.Intn(LineSize))
		gc, gd := h.AccessRange(addr+off, n)
		wc, wd := r.AccessRange(addr+off, n)
		if gc != wc || gd != wd {
			t.Fatalf("AccessRange(%#x, %d): got (%v, %d), ref (%v, %d)", addr+off, n, gc, gd, wc, wd)
		}
	default: // flush
		h.Flush()
		r.Flush()
	}
}

func checkSame(t *testing.T, tag string, h *Hierarchy, r *refHierarchy, universe []uint64) {
	t.Helper()
	if h.Stats() != r.Stats() {
		t.Fatalf("%s: stats diverged: got %v, ref %v", tag, h.Stats(), r.Stats())
	}
	if h.DRAMAccesses != r.DRAMAccesses {
		t.Fatalf("%s: DRAM accesses diverged: got %d, ref %d", tag, h.DRAMAccesses, r.DRAMAccesses)
	}
	// Final residency: every line in the universe must be held at the same
	// level in both models — this is where a wrong eviction choice shows up
	// even if costs happened to agree.
	for _, addr := range universe {
		if g, w := h.Contains(addr), r.Contains(addr); g != w {
			t.Fatalf("%s: Contains(%#x) diverged: got %v, ref %v", tag, addr, g, w)
		}
	}
}

// TestStampLRUEquivalence is the property test for the stamp-LRU rewrite:
// randomized address streams over a private hierarchy must produce exactly
// the hit levels, costs, evictions (observed via final residency), and
// stats of the positional reference model.
func TestStampLRUEquivalence(t *testing.T) {
	cfg := equivalenceConfig()
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Addresses start one line up so the reference model's line-0
		// stream sentinel (a separately-fixed bug, see
		// TestStreamDetectionLineZero) never engages; all simulated
		// addresses handed out by internal/mem are far higher anyway.
		universe := make([]uint64, 512)
		for i := range universe {
			universe[i] = uint64(1+rng.Intn(4096)) * LineSize
		}
		h, r := New(cfg), newRef(cfg)
		for step := 0; step < 20000; step++ {
			drive(t, rng, h, r, universe)
		}
		checkSame(t, "private", h, r, universe)
	}
}

// TestStampLRUEquivalenceShared runs the same property over a shared-L3
// pair built with NewShared: two hierarchies interleave accesses into one
// L3, which exercises cross-hierarchy stamp ordering in the shared level.
func TestStampLRUEquivalenceShared(t *testing.T) {
	cfg := equivalenceConfig()
	for seed := int64(100); seed <= 104; seed++ {
		rng := rand.New(rand.NewSource(seed))
		universe := make([]uint64, 512)
		for i := range universe {
			universe[i] = uint64(1+rng.Intn(4096)) * LineSize
		}
		base, refBase := New(cfg), newRef(cfg)
		shared, refShared := NewShared(cfg, base), newRefShared(cfg, refBase)
		for step := 0; step < 20000; step++ {
			if rng.Intn(2) == 0 {
				drive(t, rng, base, refBase, universe)
			} else {
				drive(t, rng, shared, refShared, universe)
			}
		}
		checkSame(t, "base", base, refBase, universe)
		checkSame(t, "shared", shared, refShared, universe)
	}
}

// TestStampLRUEquivalenceDefaultGeometry spot-checks the production
// geometry (DefaultConfig, 8/8/16-way with pow2 set counts) with a tighter
// step budget: the tiny-config tests above stress eviction logic, this one
// stresses the set-index mask path used in real runs.
func TestStampLRUEquivalenceDefaultGeometry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L3.Size = 256 << 10 // shrink so evictions actually happen in-test
	rng := rand.New(rand.NewSource(7))
	universe := make([]uint64, 2048)
	for i := range universe {
		universe[i] = uint64(1+rng.Intn(1<<16)) * LineSize
	}
	h, r := New(cfg), newRef(cfg)
	for step := 0; step < 30000; step++ {
		drive(t, rng, h, r, universe)
	}
	checkSame(t, "default", h, r, universe)
}
