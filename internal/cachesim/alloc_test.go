package cachesim

import "testing"

// TestAccessRangeAllocFree pins 0 allocs on the batched range walk, hit and
// miss alike: the stamp-LRU levels are flat arrays sized at construction,
// so steady-state lookups, fills, and evictions must never touch the heap.
func TestAccessRangeAllocFree(t *testing.T) {
	h := New(DefaultConfig())
	const base = uint64(1) << 40
	touch := func() {
		// An L1-resident run (fast path) plus a strided walk wide enough to
		// evict through L3 (miss path).
		h.AccessRange(base, 4096)
		for a := base; a < base+(64<<20); a += 64 << 10 {
			h.AccessRange(a, 128)
		}
	}
	touch() // materialize every set on the walk
	allocs := testing.AllocsPerRun(10, touch)
	if allocs != 0 {
		t.Fatalf("warm AccessRange allocated %.2f allocs (want 0)", allocs)
	}
}
