package cachesim

import (
	"math/rand"
	"testing"
)

// TestStreamDetectionFlushReset pins the post-flush charge: a sequential
// DRAM stream earns the StreamFillCy discount before a Flush, and the
// first fill after the flush — even if it exactly continues the old
// stream — pays full DRAM latency again (cold caches have no prefetch
// stream in flight; PR 7 crash-recovery flushes rely on this).
func TestStreamDetectionFlushReset(t *testing.T) {
	cfg := equivalenceConfig()
	h := New(cfg)
	const base = 1 << 20
	if _, c := h.Access(base); c != cfg.DRAMLatencyCy {
		t.Fatalf("first fill: cost %v, want full DRAM %v", c, cfg.DRAMLatencyCy)
	}
	if _, c := h.Access(base + LineSize); c != cfg.StreamFillCy {
		t.Fatalf("pre-flush stream fill: cost %v, want stream %v", c, cfg.StreamFillCy)
	}
	h.Flush()
	if _, c := h.Access(base + 2*LineSize); c != cfg.DRAMLatencyCy {
		t.Fatalf("post-flush continuation: cost %v, want full DRAM %v (stream must not survive Flush)", c, cfg.DRAMLatencyCy)
	}
	if _, c := h.Access(base + 3*LineSize); c != cfg.StreamFillCy {
		t.Fatalf("post-flush second fill: cost %v, want stream %v", c, cfg.StreamFillCy)
	}
}

// TestStreamDetectionLineZero pins the sentinel fix: the old lastLine
// encoding used 0 for "no previous fill", so a legitimate fill of line 0
// was forgotten and the following line-1 fill wrongly paid full DRAM
// latency. With validity tracked explicitly, a fill of line 0 starts a
// stream like any other line.
func TestStreamDetectionLineZero(t *testing.T) {
	cfg := equivalenceConfig()
	h := New(cfg)
	if _, c := h.Access(0); c != cfg.DRAMLatencyCy {
		t.Fatalf("line-0 fill: cost %v, want full DRAM %v", c, cfg.DRAMLatencyCy)
	}
	if _, c := h.Access(LineSize); c != cfg.StreamFillCy {
		t.Fatalf("line-1 fill after line-0: cost %v, want stream %v (line-0 must start a stream)", c, cfg.StreamFillCy)
	}
}

// TestContainsDoesNotPerturbEvictions interleaves Contains probes into a
// randomized access stream and asserts the eviction sequence — observed
// through per-access hit levels, costs, stats, and final residency — is
// identical to the same stream without the probes. A probe that restamped
// a way would promote it and change a later eviction.
func TestContainsDoesNotPerturbEvictions(t *testing.T) {
	cfg := equivalenceConfig()
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		universe := make([]uint64, 256)
		for i := range universe {
			universe[i] = uint64(1+rng.Intn(1024)) * LineSize
		}
		probed, clean := New(cfg), New(cfg)
		for step := 0; step < 10000; step++ {
			addr := universe[rng.Intn(len(universe))]
			// Probe a batch of addresses on one hierarchy only.
			for k := 0; k < 3; k++ {
				probed.Contains(universe[rng.Intn(len(universe))])
			}
			pl, pc := probed.Access(addr)
			cl, cc := clean.Access(addr)
			if pl != cl || pc != cc {
				t.Fatalf("seed %d step %d: Access(%#x) with probes (%v, %v), without (%v, %v)",
					seed, step, addr, pl, pc, cl, cc)
			}
		}
		if probed.Stats() != clean.Stats() {
			t.Fatalf("seed %d: stats diverged: probed %v, clean %v", seed, probed.Stats(), clean.Stats())
		}
		for _, addr := range universe {
			if p, c := probed.Contains(addr), clean.Contains(addr); p != c {
				t.Fatalf("seed %d: residency diverged at %#x: probed %v, clean %v", seed, addr, p, c)
			}
		}
	}
}
