// Package cachesim models a set-associative, write-allocate CPU cache
// hierarchy with LRU replacement.
//
// Cornflakes' central observation (§2.3–§2.4 of the paper) is that the
// copy-vs-scatter-gather tradeoff is governed by cache misses: each
// zero-copy send touches bookkeeping metadata (refcounts, pinned-region
// ranges) that is usually cold, while each copy touches the data itself.
// Reproducing that mechanism requires an explicit cache model over the
// simulated address space, not just fixed per-operation constants.
//
// Addresses are simulated "physical" addresses handed out by internal/mem.
// Costs are returned in CPU cycles (float64) and converted to virtual time
// by internal/costmodel.
package cachesim

import "fmt"

// LineSize is the cache line size in bytes. All x86 server parts the paper
// evaluates use 64-byte lines.
const LineSize = 64

// HitLevel identifies where an access was satisfied.
type HitLevel int

const (
	HitL1 HitLevel = iota
	HitL2
	HitL3
	HitDRAM
)

func (h HitLevel) String() string {
	switch h {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case HitL3:
		return "L3"
	default:
		return "DRAM"
	}
}

// LevelConfig describes one cache level.
type LevelConfig struct {
	Size      int     // total bytes; must be a multiple of Ways*LineSize
	Ways      int     // associativity
	LatencyCy float64 // access latency in cycles when the access hits here
}

// Config describes a hierarchy. Shared is true for levels shared between
// cores (only meaningful to callers that build per-core hierarchies).
type Config struct {
	L1, L2, L3 LevelConfig
	// DRAMLatencyCy is the cost of an access that misses every level.
	// The paper uses 100 ns ≈ 280 cycles at 2.8 GHz.
	DRAMLatencyCy float64
	// StreamFillCy is the charge for a DRAM line fill that the hardware
	// prefetcher has already covered: during a sequential copy only the
	// first line pays full DRAM latency; subsequent lines stream in at
	// roughly memory bandwidth.
	StreamFillCy float64
}

// DefaultConfig mirrors the AMD EPYC 7402P servers in the paper's testbed
// (§6.1.1), scaled to a single-core slice of the shared L3.
func DefaultConfig() Config {
	return Config{
		L1:            LevelConfig{Size: 32 << 10, Ways: 8, LatencyCy: 4},
		L2:            LevelConfig{Size: 512 << 10, Ways: 8, LatencyCy: 14},
		L3:            LevelConfig{Size: 16 << 20, Ways: 16, LatencyCy: 47},
		DRAMLatencyCy: 280, // 100 ns at 2.8 GHz
		// ≈64 B per 12 cycles ≈ 15 GB/s single-stream fill bandwidth.
		StreamFillCy: 12,
	}
}

// level is one set-associative cache level.
type level struct {
	cfg     LevelConfig
	sets    [][]uint64 // per-set MRU-ordered line tags (full line addresses)
	numSets int
	// stats
	hits, misses uint64
}

func newLevel(cfg LevelConfig) *level {
	if cfg.Ways <= 0 || cfg.Size <= 0 {
		panic(fmt.Sprintf("cachesim: invalid level config %+v", cfg))
	}
	numSets := cfg.Size / (cfg.Ways * LineSize)
	if numSets <= 0 {
		numSets = 1
	}
	sets := make([][]uint64, numSets)
	return &level{cfg: cfg, sets: sets, numSets: numSets}
}

// lookup probes for line addr (already line-aligned). On hit it refreshes
// LRU order and returns true. On miss it returns false without filling.
func (l *level) lookup(line uint64) bool {
	set := l.sets[l.setIndex(line)]
	for i, tag := range set {
		if tag == line {
			// Move to front (MRU).
			copy(set[1:i+1], set[:i])
			set[0] = line
			l.hits++
			return true
		}
	}
	l.misses++
	return false
}

// fill inserts line, evicting the LRU way if the set is full. Returns the
// evicted line and true if an eviction happened. Sets are materialized
// lazily at full associativity capacity, so after a set's first fill the
// MRU insert is an in-place shift — no allocation on the steady-state path.
func (l *level) fill(line uint64) (uint64, bool) {
	idx := l.setIndex(line)
	set := l.sets[idx]
	if len(set) < l.cfg.Ways {
		if cap(set) < l.cfg.Ways {
			grown := make([]uint64, len(set), l.cfg.Ways)
			copy(grown, set)
			set = grown
		}
		set = set[:len(set)+1]
		copy(set[1:], set)
		set[0] = line
		l.sets[idx] = set
		return 0, false
	}
	victim := set[len(set)-1]
	copy(set[1:], set[:len(set)-1])
	set[0] = line
	return victim, true
}

func (l *level) setIndex(line uint64) int {
	return int((line / LineSize) % uint64(l.numSets))
}

// contains probes without touching LRU state or stats.
func (l *level) contains(line uint64) bool {
	set := l.sets[l.setIndex(line)]
	for _, tag := range set {
		if tag == line {
			return true
		}
	}
	return false
}

// flushAll drops every line (used by experiments to start cold). Capacity
// is kept so refills after a flush stay allocation-free.
func (l *level) flushAll() {
	for i := range l.sets {
		l.sets[i] = l.sets[i][:0]
	}
}

// Stats for one level.
type LevelStats struct {
	Hits, Misses uint64
}

// Hierarchy is a three-level cache in front of DRAM. L3 may be shared with
// other hierarchies (see NewShared) to model multiple cores.
type Hierarchy struct {
	cfg      Config
	l1, l2   *level
	l3       *level
	ownsL3   bool
	lastLine uint64 // last line filled from DRAM, for stream detection
	// DRAMAccesses counts accesses that went all the way to memory.
	DRAMAccesses uint64
}

// New builds a hierarchy with a private L3.
func New(cfg Config) *Hierarchy {
	return &Hierarchy{
		cfg:    cfg,
		l1:     newLevel(cfg.L1),
		l2:     newLevel(cfg.L2),
		l3:     newLevel(cfg.L3),
		ownsL3: true,
	}
}

// NewShared builds a hierarchy whose L3 is shared with base (both cores hit
// and fill the same L3 state). base must have been built by New.
func NewShared(cfg Config, base *Hierarchy) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		l1:  newLevel(cfg.L1),
		l2:  newLevel(cfg.L2),
		l3:  base.l3,
	}
}

// Access touches a single address (one line) and returns where it hit plus
// the cycle cost. Write-allocate: writes behave like reads for fill
// purposes (the line is brought in, dirtiness is not modelled because the
// paper's costs are read-latency dominated).
func (h *Hierarchy) Access(addr uint64) (HitLevel, float64) {
	line := addr &^ uint64(LineSize-1)
	if h.l1.lookup(line) {
		return HitL1, h.cfg.L1.LatencyCy
	}
	if h.l2.lookup(line) {
		h.l1.fill(line)
		return HitL2, h.cfg.L2.LatencyCy
	}
	if h.l3.lookup(line) {
		h.l2.fill(line)
		h.l1.fill(line)
		return HitL3, h.cfg.L3.LatencyCy
	}
	// DRAM. Fill all levels.
	h.DRAMAccesses++
	h.l3.fill(line)
	h.l2.fill(line)
	h.l1.fill(line)
	cost := h.cfg.DRAMLatencyCy
	if h.lastLine != 0 && line == h.lastLine+LineSize {
		// Sequential miss stream: the prefetcher has this line in flight.
		cost = h.cfg.StreamFillCy
	}
	h.lastLine = line
	return HitDRAM, cost
}

// AccessRange touches every line in [addr, addr+n) and returns the total
// cycle cost plus the number of lines that missed to DRAM.
func (h *Hierarchy) AccessRange(addr uint64, n int) (cycles float64, dramLines int) {
	if n <= 0 {
		return 0, 0
	}
	first := addr &^ uint64(LineSize-1)
	last := (addr + uint64(n) - 1) &^ uint64(LineSize-1)
	for line := first; ; line += LineSize {
		lvl, c := h.Access(line)
		cycles += c
		if lvl == HitDRAM {
			dramLines++
		}
		if line == last {
			break
		}
	}
	return cycles, dramLines
}

// Contains reports the highest (fastest) level currently holding addr, or
// HitDRAM if no level holds it. It does not disturb LRU state.
func (h *Hierarchy) Contains(addr uint64) HitLevel {
	line := addr &^ uint64(LineSize-1)
	switch {
	case h.l1.contains(line):
		return HitL1
	case h.l2.contains(line):
		return HitL2
	case h.l3.contains(line):
		return HitL3
	default:
		return HitDRAM
	}
}

// Stats returns per-level hit/miss counters in L1, L2, L3 order.
func (h *Hierarchy) Stats() [3]LevelStats {
	return [3]LevelStats{
		{h.l1.hits, h.l1.misses},
		{h.l2.hits, h.l2.misses},
		{h.l3.hits, h.l3.misses},
	}
}

// Flush empties every private level; the L3 is flushed only if owned (the
// hierarchy that created a shared L3 owns it).
func (h *Hierarchy) Flush() {
	h.l1.flushAll()
	h.l2.flushAll()
	if h.ownsL3 {
		h.l3.flushAll()
	}
	h.lastLine = 0
}

// L3Size returns the configured L3 capacity in bytes, which experiments use
// to size working sets relative to cache (e.g. "5× larger than L3", §2.4).
func (h *Hierarchy) L3Size() int { return h.cfg.L3.Size }
