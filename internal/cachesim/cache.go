// Package cachesim models a set-associative, write-allocate CPU cache
// hierarchy with LRU replacement.
//
// Cornflakes' central observation (§2.3–§2.4 of the paper) is that the
// copy-vs-scatter-gather tradeoff is governed by cache misses: each
// zero-copy send touches bookkeeping metadata (refcounts, pinned-region
// ranges) that is usually cold, while each copy touches the data itself.
// Reproducing that mechanism requires an explicit cache model over the
// simulated address space, not just fixed per-operation constants.
//
// Replacement state is stamp-based LRU: each level keeps flat tags[] and
// stamps[] arrays indexed by set×way and a per-level monotone clock. A hit
// is one stamp store; a fill scans the set for the minimum stamp. Because
// every touch assigns a fresh, unique, monotonically increasing stamp, the
// minimum-stamp way is exactly the least-recently-used way, so eviction
// order is identical to a positional (MRU-ordered list) LRU — see
// lru_equivalence_test.go, which differences this implementation against
// the retained positional reference model.
//
// Addresses are simulated "physical" addresses handed out by internal/mem.
// Costs are returned in CPU cycles (float64) and converted to virtual time
// by internal/costmodel.
package cachesim

import "fmt"

// LineSize is the cache line size in bytes. All x86 server parts the paper
// evaluates use 64-byte lines.
const LineSize = 64

// HitLevel identifies where an access was satisfied.
type HitLevel int

const (
	HitL1 HitLevel = iota
	HitL2
	HitL3
	HitDRAM
)

func (h HitLevel) String() string {
	switch h {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case HitL3:
		return "L3"
	default:
		return "DRAM"
	}
}

// LevelConfig describes one cache level.
type LevelConfig struct {
	Size      int     // total bytes; must be a multiple of Ways*LineSize
	Ways      int     // associativity
	LatencyCy float64 // access latency in cycles when the access hits here
}

// Config describes a hierarchy. Shared is true for levels shared between
// cores (only meaningful to callers that build per-core hierarchies).
type Config struct {
	L1, L2, L3 LevelConfig
	// DRAMLatencyCy is the cost of an access that misses every level.
	// The paper uses 100 ns ≈ 280 cycles at 2.8 GHz.
	DRAMLatencyCy float64
	// StreamFillCy is the charge for a DRAM line fill that the hardware
	// prefetcher has already covered: during a sequential copy only the
	// first line pays full DRAM latency; subsequent lines stream in at
	// roughly memory bandwidth.
	StreamFillCy float64
}

// DefaultConfig mirrors the AMD EPYC 7402P servers in the paper's testbed
// (§6.1.1), scaled to a single-core slice of the shared L3.
func DefaultConfig() Config {
	return Config{
		L1:            LevelConfig{Size: 32 << 10, Ways: 8, LatencyCy: 4},
		L2:            LevelConfig{Size: 512 << 10, Ways: 8, LatencyCy: 14},
		L3:            LevelConfig{Size: 16 << 20, Ways: 16, LatencyCy: 47},
		DRAMLatencyCy: 280, // 100 ns at 2.8 GHz
		// ≈64 B per 12 cycles ≈ 15 GB/s single-stream fill bandwidth.
		StreamFillCy: 12,
	}
}

// level is one set-associative cache level. tags and stamps are flat
// set-major arrays (way w of set s lives at s*ways+w). A stamp of zero
// marks an empty way: the clock starts at zero and is pre-incremented
// before every store, so live stamps are always ≥ 1. Empty ways are filled
// front-to-back before any eviction, matching the reference model's
// grow-until-full behavior, and never reappear except via flushAll.
type level struct {
	cfg     LevelConfig
	numSets int
	ways    int
	pow2    bool // set index via mask instead of modulo
	tags    []uint64
	stamps  []uint64
	clock   uint64
	// stats
	hits, misses uint64
}

func newLevel(cfg LevelConfig) *level {
	if cfg.Ways <= 0 || cfg.Size <= 0 {
		panic(fmt.Sprintf("cachesim: invalid level config %+v", cfg))
	}
	numSets := cfg.Size / (cfg.Ways * LineSize)
	if numSets <= 0 {
		numSets = 1
	}
	n := numSets * cfg.Ways
	return &level{
		cfg:     cfg,
		numSets: numSets,
		ways:    cfg.Ways,
		pow2:    numSets&(numSets-1) == 0,
		tags:    make([]uint64, n),
		stamps:  make([]uint64, n),
	}
}

func (l *level) setIndex(line uint64) int {
	if l.pow2 {
		return int((line / LineSize) & uint64(l.numSets-1))
	}
	return int((line / LineSize) % uint64(l.numSets))
}

// lookup probes for line addr (already line-aligned). On hit it restamps
// the way — an O(1) LRU update — and returns true. On miss it returns
// false without filling.
func (l *level) lookup(line uint64) bool {
	base := l.setIndex(line) * l.ways
	tags := l.tags[base : base+l.ways]
	stamps := l.stamps[base : base+l.ways : base+l.ways]
	for i, tag := range tags {
		if tag == line && stamps[i] != 0 {
			l.clock++
			stamps[i] = l.clock
			l.hits++
			return true
		}
	}
	l.misses++
	return false
}

// fill inserts line, evicting the minimum-stamp (LRU) way if the set is
// full. Returns the evicted line and true if an eviction happened. The
// caller guarantees line is not already present (fill only runs after a
// missed lookup at this level).
func (l *level) fill(line uint64) (uint64, bool) {
	base := l.setIndex(line) * l.ways
	stamps := l.stamps[base : base+l.ways : base+l.ways]
	min := 0
	for i, s := range stamps {
		if s == 0 {
			l.clock++
			l.tags[base+i] = line
			stamps[i] = l.clock
			return 0, false
		}
		if s < stamps[min] {
			min = i
		}
	}
	victim := l.tags[base+min]
	l.clock++
	l.tags[base+min] = line
	stamps[min] = l.clock
	return victim, true
}

// contains probes without touching stamps, stats, or the clock.
func (l *level) contains(line uint64) bool {
	base := l.setIndex(line) * l.ways
	for i, tag := range l.tags[base : base+l.ways] {
		if tag == line && l.stamps[base+i] != 0 {
			return true
		}
	}
	return false
}

// flushAll drops every line (used by experiments to start cold) by zeroing
// the stamps; tags and the clock are kept, so refills after a flush stay
// allocation-free and later stamps remain globally unique.
func (l *level) flushAll() {
	clear(l.stamps)
}

// Stats for one level.
type LevelStats struct {
	Hits, Misses uint64
}

// Hierarchy is a three-level cache in front of DRAM. L3 may be shared with
// other hierarchies (see NewShared) to model multiple cores.
type Hierarchy struct {
	cfg    Config
	l1, l2 *level
	l3     *level
	ownsL3 bool
	// streamNext/streamValid track the sequential DRAM fill stream for
	// prefetch detection: streamNext is the line that would continue the
	// stream, valid only when streamValid is set. (An earlier version kept
	// a lastLine sentinel where zero meant "no stream", conflating a reset
	// with a legitimate fill of line 0.)
	streamNext  uint64
	streamValid bool
	// DRAMAccesses counts accesses that went all the way to memory.
	DRAMAccesses uint64
}

// New builds a hierarchy with a private L3.
func New(cfg Config) *Hierarchy {
	return &Hierarchy{
		cfg:    cfg,
		l1:     newLevel(cfg.L1),
		l2:     newLevel(cfg.L2),
		l3:     newLevel(cfg.L3),
		ownsL3: true,
	}
}

// NewShared builds a hierarchy whose L3 is shared with base (both cores hit
// and fill the same L3 state). base must have been built by New.
func NewShared(cfg Config, base *Hierarchy) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		l1:  newLevel(cfg.L1),
		l2:  newLevel(cfg.L2),
		l3:  base.l3,
	}
}

// Access touches a single address (one line) and returns where it hit plus
// the cycle cost. Write-allocate: writes behave like reads for fill
// purposes (the line is brought in, dirtiness is not modelled because the
// paper's costs are read-latency dominated).
func (h *Hierarchy) Access(addr uint64) (HitLevel, float64) {
	line := addr &^ uint64(LineSize-1)
	if h.l1.lookup(line) {
		return HitL1, h.cfg.L1.LatencyCy
	}
	return h.missBelowL1(line)
}

// missBelowL1 resolves a line that already missed (and was counted by) L1:
// probe L2 and L3, fill upward, and charge DRAM with stream detection on a
// full miss.
func (h *Hierarchy) missBelowL1(line uint64) (HitLevel, float64) {
	if h.l2.lookup(line) {
		h.l1.fill(line)
		return HitL2, h.cfg.L2.LatencyCy
	}
	if h.l3.lookup(line) {
		h.l2.fill(line)
		h.l1.fill(line)
		return HitL3, h.cfg.L3.LatencyCy
	}
	// DRAM. Fill all levels.
	h.DRAMAccesses++
	h.l3.fill(line)
	h.l2.fill(line)
	h.l1.fill(line)
	cost := h.cfg.DRAMLatencyCy
	if h.streamValid && line == h.streamNext {
		// Sequential miss stream: the prefetcher has this line in flight.
		cost = h.cfg.StreamFillCy
	}
	h.streamNext = line + LineSize
	h.streamValid = true
	return HitDRAM, cost
}

// AccessRange touches every line in [addr, addr+n) and returns the total
// cycle cost plus the number of lines that missed to DRAM.
//
// This is the batched fast path for the copy/scatter-gather loops that
// dominate paper workloads: the L1 probe is inlined and the L1 set index
// advances by increment-and-wrap (consecutive lines map to consecutive
// sets), so a range already resident in L1 costs one restamp per line with
// no division, no per-line call, and nothing touched below L1. Lines that
// miss fall into the same missBelowL1 path Access uses, so costs, stats,
// stream detection, and eviction order are exactly those of a per-line
// Access loop (range_equivalence_test.go pins this).
func (h *Hierarchy) AccessRange(addr uint64, n int) (cycles float64, dramLines int) {
	if n <= 0 {
		return 0, 0
	}
	line := addr &^ uint64(LineSize-1)
	nLines := int((addr+uint64(n)-1)/LineSize-line/LineSize) + 1
	l1 := h.l1
	idx := l1.setIndex(line)
	l1Cy := h.cfg.L1.LatencyCy
	for k := 0; k < nLines; k++ {
		base := idx * l1.ways
		tags := l1.tags[base : base+l1.ways]
		stamps := l1.stamps[base : base+l1.ways : base+l1.ways]
		hit := false
		for i, tag := range tags {
			if tag == line && stamps[i] != 0 {
				l1.clock++
				stamps[i] = l1.clock
				hit = true
				break
			}
		}
		if hit {
			l1.hits++
			cycles += l1Cy
		} else {
			l1.misses++
			lvl, c := h.missBelowL1(line)
			cycles += c
			if lvl == HitDRAM {
				dramLines++
			}
		}
		line += LineSize
		idx++
		if idx == l1.numSets {
			idx = 0
		}
	}
	return cycles, dramLines
}

// Contains reports the highest (fastest) level currently holding addr, or
// HitDRAM if no level holds it. It does not disturb stamps, stats, or
// stream state, so interleaving probes with accesses leaves the eviction
// sequence unchanged (contains_neutrality_test.go).
func (h *Hierarchy) Contains(addr uint64) HitLevel {
	line := addr &^ uint64(LineSize-1)
	switch {
	case h.l1.contains(line):
		return HitL1
	case h.l2.contains(line):
		return HitL2
	case h.l3.contains(line):
		return HitL3
	default:
		return HitDRAM
	}
}

// Stats returns per-level hit/miss counters in L1, L2, L3 order.
func (h *Hierarchy) Stats() [3]LevelStats {
	return [3]LevelStats{
		{h.l1.hits, h.l1.misses},
		{h.l2.hits, h.l2.misses},
		{h.l3.hits, h.l3.misses},
	}
}

// Flush empties every private level; the L3 is flushed only if owned (the
// hierarchy that created a shared L3 owns it). Stream-detection state is
// invalidated so the first post-flush DRAM fill always pays full latency.
func (h *Hierarchy) Flush() {
	h.l1.flushAll()
	h.l2.flushAll()
	if h.ownsL3 {
		h.l3.flushAll()
	}
	h.streamValid = false
}

// L3Size returns the configured L3 capacity in bytes, which experiments use
// to size working sets relative to cache (e.g. "5× larger than L3", §2.4).
func (h *Hierarchy) L3Size() int { return h.cfg.L3.Size }
