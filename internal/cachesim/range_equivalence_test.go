package cachesim

import (
	"math/rand"
	"testing"
)

// perLineRange is the straightforward per-line loop AccessRange replaced:
// the fast path must be observationally identical to it.
func perLineRange(h *Hierarchy, addr uint64, n int) (cycles float64, dramLines int) {
	if n <= 0 {
		return 0, 0
	}
	first := addr &^ uint64(LineSize - 1)
	last := (addr + uint64(n) - 1) &^ uint64(LineSize - 1)
	for line := first; ; line += LineSize {
		lvl, c := h.Access(line)
		cycles += c
		if lvl == HitDRAM {
			dramLines++
		}
		if line == last {
			break
		}
	}
	return cycles, dramLines
}

// TestAccessRangeFastPathEquivalence drives two identical hierarchies —
// one through the batched AccessRange fast path, one through a per-line
// Access loop — over randomized ranges covering unaligned starts and ends,
// single-line ranges, and ranges long enough to span every L1 set (and
// wrap), asserting identical costs, DRAM counts, stats, and residency.
func TestAccessRangeFastPathEquivalence(t *testing.T) {
	cfg := equivalenceConfig()
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		fast, slow := New(cfg), New(cfg)
		l1Bytes := uint64(cfg.L1.Size / cfg.L1.Ways) // bytes covering all L1 sets once
		for step := 0; step < 4000; step++ {
			base := uint64(1+rng.Intn(4096)) * LineSize
			off := uint64(rng.Intn(LineSize)) // unaligned start
			var n int
			switch rng.Intn(4) {
			case 0:
				n = 1 + rng.Intn(LineSize) // within one or two lines
			case 1:
				n = 1 + rng.Intn(8*LineSize)
			case 2:
				n = int(l1Bytes) + rng.Intn(2*LineSize) // spans all L1 sets, wraps
			default:
				n = 1 + rng.Intn(3*int(l1Bytes)) // multiple wraps
			}
			fc, fd := fast.AccessRange(base+off, n)
			sc, sd := perLineRange(slow, base+off, n)
			if fc != sc || fd != sd {
				t.Fatalf("seed %d step %d: AccessRange(%#x, %d) = (%v, %d), per-line loop = (%v, %d)",
					seed, step, base+off, n, fc, fd, sc, sd)
			}
			if fast.Stats() != slow.Stats() {
				t.Fatalf("seed %d step %d: stats diverged: fast %v, slow %v", seed, step, fast.Stats(), slow.Stats())
			}
		}
		if fast.DRAMAccesses != slow.DRAMAccesses {
			t.Fatalf("seed %d: DRAM accesses diverged: fast %d, slow %d", seed, fast.DRAMAccesses, slow.DRAMAccesses)
		}
	}
}

// TestAccessRangeL1Resident pins the fast path's behavior on a range fully
// resident in L1: cost is exactly lines×L1 latency, nothing below L1 is
// probed, and no DRAM access is charged.
func TestAccessRangeL1Resident(t *testing.T) {
	cfg := equivalenceConfig()
	h := New(cfg)
	const base, n = 64 * 1024, 4 * LineSize
	h.AccessRange(base, n) // fill
	before := h.Stats()
	cy, dram := h.AccessRange(base, n)
	if want := 4 * cfg.L1.LatencyCy; cy != want || dram != 0 {
		t.Fatalf("resident range: got (%v, %d), want (%v, 0)", cy, dram, want)
	}
	after := h.Stats()
	if after[0].Hits != before[0].Hits+4 || after[0].Misses != before[0].Misses {
		t.Fatalf("L1 stats: got %+v after %+v", after[0], before[0])
	}
	if after[1] != before[1] || after[2] != before[2] {
		t.Fatalf("resident range touched lower levels: before %v, after %v", before, after)
	}
}
