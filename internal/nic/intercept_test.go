package nic

import (
	"bytes"
	"errors"
	"testing"

	"cornflakes/internal/sim"
)

func TestInterceptorDropCountsAsWireLoss(t *testing.T) {
	eng := sim.NewEngine()
	a, b := newPair(eng)
	got := 0
	b.SetHandler(func(*Frame) { got++ })
	a.Interceptor = func([]byte) []Delivery { return nil }
	if err := a.Send([]SGEntry{{Data: []byte("gone")}}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got != 0 {
		t.Errorf("dropped frame delivered %d times", got)
	}
	if a.DroppedFrames != 1 {
		t.Errorf("DroppedFrames = %d, want 1", a.DroppedFrames)
	}
	// The gather still happened: TX stats count the attempt.
	if a.TxFrames != 1 {
		t.Errorf("TxFrames = %d, want 1", a.TxFrames)
	}
}

func TestInterceptorDuplicationAndDelayOrdering(t *testing.T) {
	eng := sim.NewEngine()
	a, b := newPair(eng)
	var got [][]byte
	b.SetHandler(func(f *Frame) { got = append(got, append([]byte(nil), f.Data...)) })
	// First frame delayed past the second; second duplicated. Expected
	// arrival order: second, second (copy), first.
	n := 0
	a.Interceptor = func(data []byte) []Delivery {
		n++
		if n == 1 {
			return []Delivery{{Data: data, Delay: 50 * sim.Microsecond}}
		}
		return []Delivery{{Data: data}, {Data: data}}
	}
	if err := a.Send([]SGEntry{{Data: []byte("first")}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]SGEntry{{Data: []byte("second")}}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(got) != 3 {
		t.Fatalf("delivered %d frames, want 3", len(got))
	}
	want := [][]byte{[]byte("second"), []byte("second"), []byte("first")}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("arrival %d = %q, want %q", i, got[i], want[i])
		}
	}
	if b.RxFrames != 3 {
		t.Errorf("RxFrames = %d, want 3", b.RxFrames)
	}
}

func TestCorruptedFrameDroppedByFCS(t *testing.T) {
	eng := sim.NewEngine()
	a, b := newPair(eng)
	got := 0
	b.SetHandler(func(*Frame) { got++ })
	a.Interceptor = func(data []byte) []Delivery {
		c := append([]byte(nil), data...)
		c[len(c)/2] ^= 0x40
		return []Delivery{{Data: c}}
	}
	if err := a.Send([]SGEntry{{Data: make([]byte, 128)}}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got != 0 {
		t.Errorf("corrupted frame delivered %d times", got)
	}
	if b.RxFCSErrors != 1 {
		t.Errorf("RxFCSErrors = %d, want 1", b.RxFCSErrors)
	}
	if b.RxFrames != 0 {
		t.Errorf("RxFrames = %d, want 0", b.RxFrames)
	}
}

func TestInterceptorComposesWithInjectLoss(t *testing.T) {
	eng := sim.NewEngine()
	a, b := newPair(eng)
	got := 0
	b.SetHandler(func(*Frame) { got++ })
	intercepted := 0
	a.InjectLoss = func(data []byte) bool { return data[0] == 'x' }
	a.Interceptor = func(data []byte) []Delivery {
		intercepted++
		return []Delivery{{Data: data}}
	}
	a.Send([]SGEntry{{Data: []byte("x-dropped")}})
	a.Send([]SGEntry{{Data: []byte("kept")}})
	eng.Run()
	// InjectLoss runs first: the interceptor never sees the dropped frame.
	if intercepted != 1 {
		t.Errorf("interceptor saw %d frames, want 1", intercepted)
	}
	if got != 1 {
		t.Errorf("delivered %d frames, want 1", got)
	}
	if a.DroppedFrames != 1 {
		t.Errorf("DroppedFrames = %d, want 1", a.DroppedFrames)
	}
}

func TestInjectSendErrRefusesBeforeReferences(t *testing.T) {
	eng := sim.NewEngine()
	a, b := newPair(eng)
	got := 0
	b.SetHandler(func(*Frame) { got++ })
	refuse := errors.New("tx ring full")
	calls := 0
	a.InjectSendErr = func() error {
		calls++
		if calls == 1 {
			return refuse
		}
		return nil
	}
	released := 0
	ent := []SGEntry{{Data: []byte("payload"), Release: func() { released++ }}}
	if err := a.Send(ent); !errors.Is(err, refuse) {
		t.Fatalf("err = %v, want refusal", err)
	}
	// A refused post must not run Release hooks or count as a TX frame.
	if released != 0 {
		t.Errorf("Release ran %d times on refused post", released)
	}
	if a.TxFrames != 0 {
		t.Errorf("TxFrames = %d, want 0", a.TxFrames)
	}
	if a.RefusedSends != 1 {
		t.Errorf("RefusedSends = %d, want 1", a.RefusedSends)
	}
	if err := a.Send(ent); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if released != 1 || got != 1 {
		t.Errorf("after retry: released=%d delivered=%d, want 1/1", released, got)
	}
}
