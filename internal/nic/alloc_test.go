package nic

import (
	"testing"

	"cornflakes/internal/sim"
)

// TestFramePathAllocFree pins 0 allocs/frame on the steady-state TX→DMA→RX
// path: the tx/rx op pools, the frame-data buffer pool, and the engine's
// event free list must absorb every per-frame object once warm. This is the
// per-request hot loop of every experiment — one allocation here multiplies
// by tens of millions across the suite.
func TestFramePathAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	a, b := newPair(eng)
	b.SetHandler(func(f *Frame) {})
	entries := []SGEntry{
		{Data: []byte("header-bytes")},
		{Data: []byte("payload-payload-payload")},
	}
	send := func() {
		if err := a.Send(entries); err != nil {
			t.Fatal(err)
		}
		eng.Run()
	}
	// Warm the op pools, the data pool, and the event free list.
	for i := 0; i < 16; i++ {
		send()
	}
	allocs := testing.AllocsPerRun(100, send)
	if allocs != 0 {
		t.Fatalf("steady-state frame path allocated %.2f allocs per frame (want 0)", allocs)
	}
}
