// Package nic simulates a commodity scatter-gather NIC pair connected by a
// link, substituting for the Mellanox ConnectX-5/6 and Intel E810 hardware
// in the paper's testbed.
//
// The model captures what matters for the copy/zero-copy tradeoff:
//
//   - Scatter-gather transmit: a packet is described by a list of SG
//     entries; the NIC issues one PCIe read per entry to gather them
//     ("tells the NIC to make three PCIe requests to coalesce the buffers",
//     Fig. 1). NIC-side gather costs latency and NIC bandwidth, not host
//     CPU cycles — host-side descriptor costs are charged by the cost
//     model, not here.
//   - A per-profile maximum SG entry count (the Intel E810 supports only 8,
//     §6.3); exceeding it is a send error the stack must avoid.
//   - Link serialization at the configured rate and propagation delay.
//   - Asynchronous completion: each entry's Release hook fires only after
//     the DMA engine has read the data, which is what makes use-after-free
//     protection necessary in the first place (§2.3).
//
// Functionally the NIC gathers real bytes: the delivered frame is the exact
// concatenation of the SG entries, so receivers parse genuine wire bytes.
package nic

import (
	"fmt"

	"cornflakes/internal/sim"
)

// Profile describes one NIC model.
type Profile struct {
	Name string
	// MaxSGEntries is the hardware limit on scatter-gather entries per
	// frame, including the entry holding the packet header.
	MaxSGEntries int
	// LinkGbps is the port rate.
	LinkGbps float64
	// PerEntryDMANs is the added gather *latency* per SG entry: each entry
	// is one more PCIe read in the pipeline, so a many-entry frame takes
	// longer to assemble — but reads overlap, so the per-entry *occupancy*
	// (EntryOccupancyNs) is far smaller.
	PerEntryDMANs float64
	// PerPacketNs is fixed NIC processing latency per frame.
	PerPacketNs float64
	// PacketOccupancyNs and EntryOccupancyNs are the DMA engine's
	// throughput costs: the pipeline issues a new frame every
	// PacketOccupancyNs + entries*EntryOccupancyNs + bytes/DMAGbps,
	// regardless of the end-to-end assembly latency.
	PacketOccupancyNs float64
	EntryOccupancyNs  float64
	// DMAGbps is the DMA engine's effective read bandwidth.
	DMAGbps float64
	// MaxTxBurst is the largest number of frames the driver may post under
	// a single doorbell ring (the hardware TX queue's burst limit). SendBatch
	// splits larger bursts into chunks of this size, each paying one
	// doorbell. Zero or one means the NIC takes no amortization: every
	// frame pays the full per-doorbell cost, as in Send.
	MaxTxBurst int
	// DoorbellNs is the DMA engine's per-doorbell occupancy — the fixed
	// cost of fetching a fresh batch of descriptors after a tail-pointer
	// write. Zero means PacketOccupancyNs (the default profiles fold the
	// doorbell into the per-packet cost, which is exactly what batching
	// amortizes: only the first frame of a burst pays it). ExplicitZero
	// (any negative value) means a free doorbell.
	DoorbellNs float64
}

// ExplicitZero marks a Profile or link knob as deliberately zero where the
// zero value itself means "unset, use the default". Any negative value
// works; this constant names the intent.
const ExplicitZero = -1

// MellanoxCX5Ex models the CloudLab c6525-100g NIC used for the §5
// measurement study.
func MellanoxCX5Ex() Profile {
	return Profile{
		Name:              "Mellanox CX-5Ex",
		MaxSGEntries:      64,
		LinkGbps:          100,
		PerEntryDMANs:     55,
		PerPacketNs:       300,
		PacketOccupancyNs: 8,
		EntryOccupancyNs:  2,
		DMAGbps:           200,
		MaxTxBurst:        32,
	}
}

// MellanoxCX6 models the ConnectX-6 NICs used for the end-to-end
// experiments (§6.1.1).
func MellanoxCX6() Profile {
	return Profile{
		Name:              "Mellanox CX-6",
		MaxSGEntries:      64,
		LinkGbps:          100,
		PerEntryDMANs:     50,
		PerPacketNs:       280,
		PacketOccupancyNs: 7,
		EntryOccupancyNs:  2,
		DMAGbps:           220,
		MaxTxBurst:        32,
	}
}

// IntelE810 models the E810-CQDA2, which "supports only up to 8
// scatter-gather entries" (§6.3).
func IntelE810() Profile {
	return Profile{
		Name:              "Intel E810-CQDA2",
		MaxSGEntries:      8,
		LinkGbps:          100,
		PerEntryDMANs:     65,
		PerPacketNs:       320,
		PacketOccupancyNs: 10,
		EntryOccupancyNs:  3,
		DMAGbps:           200,
		MaxTxBurst:        8,
	}
}

// SGEntry is one element of a transmit gather list.
type SGEntry struct {
	// Data is the real bytes the NIC will place in the frame.
	Data []byte
	// Sim is the simulated physical address of Data (for diagnostics; DMA
	// reads are not routed through the CPU cache model — DMA on these
	// platforms does not allocate into CPU caches).
	Sim uint64
	// Release, if non-nil, runs when the DMA engine has finished reading
	// this entry. The networking stack uses it to drop its buffer
	// reference (use-after-free protection).
	Release func()
}

// Frame is a received packet.
type Frame struct {
	Data []byte
	// SentAt is when the sender posted the frame (for RTT bookkeeping in
	// tests; real stacks carry timestamps in payloads).
	SentAt sim.Time
}

// Handler consumes received frames.
type Handler func(*Frame)

// Delivery describes one copy of an intercepted frame to put on the wire.
// An Interceptor returns zero or more Deliveries per transmitted frame:
// none drops the frame, several duplicate it, and each copy may carry
// substituted (e.g. corrupted) bytes and extra delay beyond serialization
// and propagation. Out-of-order delivery falls out of unequal delays.
type Delivery struct {
	Data  []byte
	Delay sim.Time
}

// Interceptor sits on the wire path between DMA completion and delivery —
// a programmable bad link. It runs after InjectLoss (the two compose: a
// frame must survive both), and it never affects buffer release, which has
// already happened when the hardware read the data. internal/faults builds
// its seeded loss/reorder/duplication/corruption model on this hook.
type Interceptor func(data []byte) []Delivery

// frameFCS models the Ethernet frame check sequence the NIC appends on
// transmit and verifies on receive. Corruption on the wire is detected
// here — in "hardware", for free — and the frame is dropped before the
// stack sees it, exactly like a real NIC discarding a bad-CRC frame.
// A 32-bit sum of byte×position terms is enough to guarantee detection of
// any single-byte change, which is all the fault model injects.
func frameFCS(data []byte) uint32 {
	var sum uint32
	for i, b := range data {
		sum = sum*31 + uint32(b) + uint32(i)
	}
	return sum
}

// TxRecord is the timing record of one transmitted frame, reported to the
// port's Observer at DMA completion.
type TxRecord struct {
	// Posted is when Send was called; DMADone when the gather finished and
	// buffers were released; TxDone when the frame left the wire; DeliverAt
	// when it reaches the peer (before any interceptor-added delay).
	Posted, DMADone, TxDone, DeliverAt sim.Time
	// Bytes and Entries describe the frame; Data is the assembled frame
	// contents (read-only — the same backing array is delivered to the
	// peer).
	Bytes   int
	Entries int
	Data    []byte
	// Dropped reports that the frame was lost on the wire (InjectLoss, or
	// an Interceptor returning no deliveries); DeliverAt is then the time
	// it would have arrived.
	Dropped bool
}

// Port is one NIC attached to one end of a link.
type Port struct {
	eng     *sim.Engine
	prof    Profile
	peer    *Port
	propag  sim.Time
	handler Handler

	dmaFree sim.Time // DMA engine availability
	txFree  sim.Time // wire availability

	// InjectLoss, when set, is consulted per frame after DMA completes;
	// returning true drops the frame on the wire (buffers are still
	// released — the hardware has read them). Tests use it to exercise
	// retransmission paths.
	InjectLoss func(data []byte) bool

	// Interceptor, when set, is consulted after InjectLoss and decides how
	// (and how many times) the frame reaches the peer. See Interceptor.
	Interceptor Interceptor

	// InjectSendErr, when set, is consulted at the top of Send; a non-nil
	// return refuses the post — modelling a full TX descriptor ring —
	// before the NIC takes any buffer reference. Tests use it to exercise
	// the stack's transmit-failure paths deterministically.
	InjectSendErr func() error

	// Observer, when set, is called once per posted frame at DMA-completion
	// time with the frame's timing record. By then every instant in the
	// record is determined (wire serialization and delivery are scheduled,
	// not speculative), so a tracer can mark a request's whole TX chain from
	// one callback. Observation is passive: it never alters timing, buffer
	// release, or delivery.
	Observer func(TxRecord)

	// DroppedFrames counts frames lost on the wire (InjectLoss plus frames
	// the Interceptor returned no deliveries for).
	DroppedFrames uint64

	// RefusedSends counts posts rejected by InjectSendErr.
	RefusedSends uint64

	// RxFCSErrors counts arriving frames discarded because their contents
	// no longer matched the transmit-side frame check sequence (wire
	// corruption detected by the receiving NIC).
	RxFCSErrors uint64

	// Stats. TxFrames/TxBytes count frames *posted* (accepted by the
	// hardware), whether or not they survive the wire; use
	// DeliveredFrames/DeliveredBytes for "reached the peer intact".
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64
	TxSGEntries        uint64

	// DeliveredFrames/DeliveredBytes count frames that arrived at the peer
	// intact — after InjectLoss, Interceptor drops, and FCS checks — from
	// the sender's perspective. Duplicated copies each count once (they are
	// distinct arrivals). Goodput-style accounting must use these, not
	// TxFrames/TxBytes, which are charged at post time before any wire
	// fault can intervene.
	DeliveredFrames uint64
	DeliveredBytes  uint64

	// TxDoorbells counts doorbell rings: one per Send, one per MaxTxBurst
	// chunk in SendBatch. The amortization the batched datapath buys is
	// visible as TxDoorbells < TxFrames.
	TxDoorbells uint64
}

// Link connects two new ports with the given profiles and one-way
// propagation delay (wire + switch).
func Link(eng *sim.Engine, a, b Profile, propagation sim.Time) (*Port, *Port) {
	return LinkOn(eng, eng, a, b, propagation)
}

// LinkOn is Link with the two ends on (possibly) different engines — the
// partitioned-mode topology builder puts each end on its partition's shard.
// Deliveries are scheduled on the *receiving* port's engine via
// sim.AtFrom, which is the identical call when both ends share one engine.
// The propagation delay is the link's contribution to the partition
// lookahead: it must be ≥ the coordinator's lookahead bound for the
// conservative windows to be sound (sim.Engine panics on a violation).
func LinkOn(engA, engB *sim.Engine, a, b Profile, propagation sim.Time) (*Port, *Port) {
	pa := &Port{eng: engA, prof: a, propag: propagation}
	pb := &Port{eng: engB, prof: b, propag: propagation}
	pa.peer = pb
	pb.peer = pa
	return pa, pb
}

// Profile returns the port's NIC profile.
func (p *Port) Profile() Profile { return p.prof }

// SetHandler installs the receive callback. Frames arriving with no handler
// are dropped.
func (p *Port) SetHandler(h Handler) { p.handler = h }

// ErrTooManyEntries is returned when a gather list exceeds the NIC limit.
type ErrTooManyEntries struct {
	Entries, Max int
}

func (e *ErrTooManyEntries) Error() string {
	return fmt.Sprintf("nic: %d scatter-gather entries exceeds hardware limit %d", e.Entries, e.Max)
}

// doorbellNs returns the per-doorbell DMA occupancy: the explicit
// DoorbellNs knob if set, else PacketOccupancyNs (the default profiles fold
// the doorbell cost into the per-packet cost). A negative DoorbellNs
// (ExplicitZero) means a genuinely free doorbell — without the sentinel a
// zero-cost doorbell was indistinguishable from "unset" and silently
// charged the per-packet fallback.
func (p *Port) doorbellNs() float64 {
	if p.prof.DoorbellNs < 0 {
		return 0
	}
	if p.prof.DoorbellNs > 0 {
		return p.prof.DoorbellNs
	}
	return p.prof.PacketOccupancyNs
}

// Send posts a frame described by a gather list. The NIC asynchronously:
//  1. gathers the entries over PCIe (DMA engine is a FIFO resource),
//  2. fires each entry's Release when its data has been read,
//  3. serializes the frame onto the wire (the wire is a FIFO resource),
//  4. delivers it to the peer after the propagation delay.
//
// The frame contents are snapshotted at gather completion, consistent with
// hardware: mutating a buffer before DMA finishes is a race the paper's
// safety model explicitly does not protect against.
func (p *Port) Send(entries []SGEntry) error {
	p.TxDoorbells++
	return p.send(entries, p.doorbellNs())
}

// SendBatch posts a burst of frames under amortized doorbells: frames are
// chunked by the profile's MaxTxBurst, and only the first frame of each
// chunk pays the per-doorbell DMA occupancy — the rest issue back-to-back.
// Frames are posted in order; on error it returns how many frames were
// posted before the failing one (the failing frame and everything after it
// are untouched — no buffer references taken, no releases pending). An
// empty batch is a no-op.
func (p *Port) SendBatch(frames [][]SGEntry) (int, error) {
	if len(frames) == 0 {
		return 0, nil
	}
	burst := p.prof.MaxTxBurst
	if burst < 1 {
		burst = 1
	}
	for i, f := range frames {
		db := 0.0
		if i%burst == 0 {
			p.TxDoorbells++
			db = p.doorbellNs()
		}
		if err := p.send(f, db); err != nil {
			return i, err
		}
	}
	return len(frames), nil
}

// send posts one frame charging doorbellNs of per-doorbell DMA occupancy
// (the full cost for unbatched sends and chunk leaders, zero for the
// follower frames of a batch).
func (p *Port) send(entries []SGEntry, doorbellNs float64) error {
	if len(entries) == 0 {
		return fmt.Errorf("nic: empty gather list")
	}
	if len(entries) > p.prof.MaxSGEntries {
		return &ErrTooManyEntries{Entries: len(entries), Max: p.prof.MaxSGEntries}
	}
	if p.InjectSendErr != nil {
		if err := p.InjectSendErr(); err != nil {
			p.RefusedSends++
			return err
		}
	}
	total := 0
	for _, e := range entries {
		total += len(e.Data)
	}
	now := p.eng.Now()
	p.TxFrames++
	p.TxBytes += uint64(total)
	p.TxSGEntries += uint64(len(entries))

	// DMA engine occupancy (pipeline issue rate) vs assembly latency: the
	// engine frees up after the occupancy, while the frame finishes
	// assembling after the additional pipelined latency.
	occupancy := sim.FromNanos(doorbellNs +
		p.prof.EntryOccupancyNs*float64(len(entries)) +
		float64(total)*8/p.prof.DMAGbps)
	latency := sim.FromNanos(p.prof.PerPacketNs +
		p.prof.PerEntryDMANs*float64(len(entries)))
	dmaStart := max(now, p.dmaFree)
	p.dmaFree = dmaStart + occupancy
	dmaDone := dmaStart + occupancy + latency

	// Wire occupancy: frame serialization at line rate.
	wireTime := sim.FromNanos(float64(total) * 8 / p.prof.LinkGbps)
	txStart := max(dmaDone, p.txFree)
	txDone := txStart + wireTime
	p.txFree = txDone

	sentAt := now
	ents := entries
	p.eng.At(dmaDone, func() {
		// Snapshot the frame exactly when the hardware has read it, then
		// release the buffers.
		data := make([]byte, 0, total)
		for _, e := range ents {
			data = append(data, e.Data...)
		}
		for _, e := range ents {
			if e.Release != nil {
				e.Release()
			}
		}
		observe := func(dropped bool) {
			if p.Observer != nil {
				p.Observer(TxRecord{
					Posted: sentAt, DMADone: dmaDone, TxDone: txDone,
					DeliverAt: txDone + p.propag,
					Bytes:     total, Entries: len(ents), Data: data,
					Dropped: dropped,
				})
			}
		}
		if p.InjectLoss != nil && p.InjectLoss(data) {
			p.DroppedFrames++
			observe(true)
			return
		}
		peer := p.peer
		arrive := func(frame []byte) {
			p.DeliveredFrames++
			p.DeliveredBytes += uint64(len(frame))
			peer.RxFrames++
			peer.RxBytes += uint64(len(frame))
			if peer.handler != nil {
				peer.handler(&Frame{Data: frame, SentAt: sentAt})
			}
		}
		if p.Interceptor == nil {
			observe(false)
			// Delivery runs on the receiver's engine: with both ends on one
			// engine this is exactly p.eng.At; across partitions it crosses
			// into the peer shard's inbox. Either way the sender-side stats
			// that arrive() bumps (DeliveredFrames/Bytes) are written only by
			// the peer's shard, disjoint from the fields this closure writes.
			peer.eng.AtFrom(p.eng, txDone+p.propag, func() { arrive(data) })
			return
		}
		// The hardware computed the FCS over the pristine frame; each wire
		// copy is re-checked on arrival so corruption injected by the
		// interceptor is discarded by the receiving NIC.
		fcs := frameFCS(data)
		ds := p.Interceptor(data)
		observe(len(ds) == 0)
		if len(ds) == 0 {
			p.DroppedFrames++
			return
		}
		for di, d := range ds {
			extra := d.Delay
			if extra < 0 {
				extra = 0
			}
			depart := txDone
			if di > 0 {
				// A duplicated copy is a real extra frame: it serializes
				// on the wire after whatever the port has already queued,
				// consuming link bandwidth like any other transmission.
				// (Before this, extra copies departed at txDone without
				// touching txFree — duplicates cost zero bandwidth and
				// soak runs understated congestion.)
				start := max(p.txFree, txDone)
				p.txFree = start + wireTime
				depart = p.txFree
			}
			frame := d.Data
			peer.eng.AtFrom(p.eng, depart+p.propag+extra, func() {
				if frameFCS(frame) != fcs {
					peer.RxFCSErrors++
					return
				}
				arrive(frame)
			})
		}
	})
	return nil
}

func max(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
