// Package nic simulates a commodity scatter-gather NIC pair connected by a
// link, substituting for the Mellanox ConnectX-5/6 and Intel E810 hardware
// in the paper's testbed.
//
// The model captures what matters for the copy/zero-copy tradeoff:
//
//   - Scatter-gather transmit: a packet is described by a list of SG
//     entries; the NIC issues one PCIe read per entry to gather them
//     ("tells the NIC to make three PCIe requests to coalesce the buffers",
//     Fig. 1). NIC-side gather costs latency and NIC bandwidth, not host
//     CPU cycles — host-side descriptor costs are charged by the cost
//     model, not here.
//   - A per-profile maximum SG entry count (the Intel E810 supports only 8,
//     §6.3); exceeding it is a send error the stack must avoid.
//   - Link serialization at the configured rate and propagation delay.
//   - Asynchronous completion: each entry's Release hook fires only after
//     the DMA engine has read the data, which is what makes use-after-free
//     protection necessary in the first place (§2.3).
//
// Functionally the NIC gathers real bytes: the delivered frame is the exact
// concatenation of the SG entries, so receivers parse genuine wire bytes.
package nic

import (
	"fmt"

	"cornflakes/internal/sim"
)

// Profile describes one NIC model.
type Profile struct {
	Name string
	// MaxSGEntries is the hardware limit on scatter-gather entries per
	// frame, including the entry holding the packet header.
	MaxSGEntries int
	// LinkGbps is the port rate.
	LinkGbps float64
	// PerEntryDMANs is the added gather *latency* per SG entry: each entry
	// is one more PCIe read in the pipeline, so a many-entry frame takes
	// longer to assemble — but reads overlap, so the per-entry *occupancy*
	// (EntryOccupancyNs) is far smaller.
	PerEntryDMANs float64
	// PerPacketNs is fixed NIC processing latency per frame.
	PerPacketNs float64
	// PacketOccupancyNs and EntryOccupancyNs are the DMA engine's
	// throughput costs: the pipeline issues a new frame every
	// PacketOccupancyNs + entries*EntryOccupancyNs + bytes/DMAGbps,
	// regardless of the end-to-end assembly latency.
	PacketOccupancyNs float64
	EntryOccupancyNs  float64
	// DMAGbps is the DMA engine's effective read bandwidth.
	DMAGbps float64
	// MaxTxBurst is the largest number of frames the driver may post under
	// a single doorbell ring (the hardware TX queue's burst limit). SendBatch
	// splits larger bursts into chunks of this size, each paying one
	// doorbell. Zero or one means the NIC takes no amortization: every
	// frame pays the full per-doorbell cost, as in Send.
	MaxTxBurst int
	// DoorbellNs is the DMA engine's per-doorbell occupancy — the fixed
	// cost of fetching a fresh batch of descriptors after a tail-pointer
	// write. Zero means PacketOccupancyNs (the default profiles fold the
	// doorbell into the per-packet cost, which is exactly what batching
	// amortizes: only the first frame of a burst pays it). ExplicitZero
	// (any negative value) means a free doorbell.
	DoorbellNs float64
}

// ExplicitZero marks a Profile or link knob as deliberately zero where the
// zero value itself means "unset, use the default". Any negative value
// works; this constant names the intent.
const ExplicitZero = -1

// MellanoxCX5Ex models the CloudLab c6525-100g NIC used for the §5
// measurement study.
func MellanoxCX5Ex() Profile {
	return Profile{
		Name:              "Mellanox CX-5Ex",
		MaxSGEntries:      64,
		LinkGbps:          100,
		PerEntryDMANs:     55,
		PerPacketNs:       300,
		PacketOccupancyNs: 8,
		EntryOccupancyNs:  2,
		DMAGbps:           200,
		MaxTxBurst:        32,
	}
}

// MellanoxCX6 models the ConnectX-6 NICs used for the end-to-end
// experiments (§6.1.1).
func MellanoxCX6() Profile {
	return Profile{
		Name:              "Mellanox CX-6",
		MaxSGEntries:      64,
		LinkGbps:          100,
		PerEntryDMANs:     50,
		PerPacketNs:       280,
		PacketOccupancyNs: 7,
		EntryOccupancyNs:  2,
		DMAGbps:           220,
		MaxTxBurst:        32,
	}
}

// IntelE810 models the E810-CQDA2, which "supports only up to 8
// scatter-gather entries" (§6.3).
func IntelE810() Profile {
	return Profile{
		Name:              "Intel E810-CQDA2",
		MaxSGEntries:      8,
		LinkGbps:          100,
		PerEntryDMANs:     65,
		PerPacketNs:       320,
		PacketOccupancyNs: 10,
		EntryOccupancyNs:  3,
		DMAGbps:           200,
		MaxTxBurst:        8,
	}
}

// SGReleaser is the allocation-free variant of an entry's Release hook: a
// long-lived implementor (the UDP endpoint, a server's per-mode releaser)
// receives the entry's RelArg back at DMA-completion time. Passing a
// pointer through the arg interface does not allocate, unlike binding a
// fresh Release closure per entry.
type SGReleaser interface {
	ReleaseSG(arg any)
}

// SGEntry is one element of a transmit gather list.
type SGEntry struct {
	// Data is the real bytes the NIC will place in the frame.
	Data []byte
	// Sim is the simulated physical address of Data (for diagnostics; DMA
	// reads are not routed through the CPU cache model — DMA on these
	// platforms does not allocate into CPU caches).
	Sim uint64
	// Release, if non-nil, runs when the DMA engine has finished reading
	// this entry. The networking stack uses it to drop its buffer
	// reference (use-after-free protection).
	Release func()
	// Rel/RelArg are the pooled-path equivalent: if Rel is non-nil,
	// Rel.ReleaseSG(RelArg) runs at DMA completion (after Release, when
	// both are set). Hot paths prefer this pair — the implementor is
	// long-lived and RelArg is a pointer, so posting an entry allocates
	// nothing.
	Rel    SGReleaser
	RelArg any
}

// Frame is a received packet.
type Frame struct {
	Data []byte
	// SentAt is when the sender posted the frame (for RTT bookkeeping in
	// tests; real stacks carry timestamps in payloads).
	SentAt sim.Time
}

// Handler consumes received frames. The *Frame is only valid for the
// duration of the call (it may be pooled); handlers keep Data — which
// remains theirs — not the Frame itself.
type Handler func(*Frame)

// Delivery describes one copy of an intercepted frame to put on the wire.
// An Interceptor returns zero or more Deliveries per transmitted frame:
// none drops the frame, several duplicate it, and each copy may carry
// substituted (e.g. corrupted) bytes and extra delay beyond serialization
// and propagation. Out-of-order delivery falls out of unequal delays.
type Delivery struct {
	Data  []byte
	Delay sim.Time
}

// Interceptor sits on the wire path between DMA completion and delivery —
// a programmable bad link. It runs after InjectLoss (the two compose: a
// frame must survive both), and it never affects buffer release, which has
// already happened when the hardware read the data. internal/faults builds
// its seeded loss/reorder/duplication/corruption model on this hook.
type Interceptor func(data []byte) []Delivery

// frameFCS models the Ethernet frame check sequence the NIC appends on
// transmit and verifies on receive. Corruption on the wire is detected
// here — in "hardware", for free — and the frame is dropped before the
// stack sees it, exactly like a real NIC discarding a bad-CRC frame.
// A 32-bit sum of byte×position terms is enough to guarantee detection of
// any single-byte change, which is all the fault model injects.
func frameFCS(data []byte) uint32 {
	var sum uint32
	for i, b := range data {
		sum = sum*31 + uint32(b) + uint32(i)
	}
	return sum
}

// TxRecord is the timing record of one transmitted frame, reported to the
// port's Observer at DMA completion.
type TxRecord struct {
	// Posted is when Send was called; DMADone when the gather finished and
	// buffers were released; TxDone when the frame left the wire; DeliverAt
	// when it reaches the peer (before any interceptor-added delay).
	Posted, DMADone, TxDone, DeliverAt sim.Time
	// Bytes and Entries describe the frame; Data is the assembled frame
	// contents (read-only — the same backing array is delivered to the
	// peer, and may be recycled for a later frame once delivery completes,
	// so observers must not retain it past the callback).
	Bytes   int
	Entries int
	Data    []byte
	// Dropped reports that the frame was lost on the wire (InjectLoss, or
	// an Interceptor returning no deliveries); DeliverAt is then the time
	// it would have arrived.
	Dropped bool
}

// Port is one NIC attached to one end of a link.
type Port struct {
	eng     *sim.Engine
	prof    Profile
	peer    *Port
	propag  sim.Time
	handler Handler

	dmaFree sim.Time // DMA engine availability
	txFree  sim.Time // wire availability

	// InjectLoss, when set, is consulted per frame after DMA completes;
	// returning true drops the frame on the wire (buffers are still
	// released — the hardware has read them). Tests use it to exercise
	// retransmission paths.
	InjectLoss func(data []byte) bool

	// Interceptor, when set, is consulted after InjectLoss and decides how
	// (and how many times) the frame reaches the peer. See Interceptor.
	Interceptor Interceptor

	// InjectSendErr, when set, is consulted at the top of Send; a non-nil
	// return refuses the post — modelling a full TX descriptor ring —
	// before the NIC takes any buffer reference. Tests use it to exercise
	// the stack's transmit-failure paths deterministically.
	InjectSendErr func() error

	// Observer, when set, is called once per posted frame at DMA-completion
	// time with the frame's timing record. By then every instant in the
	// record is determined (wire serialization and delivery are scheduled,
	// not speculative), so a tracer can mark a request's whole TX chain from
	// one callback. Observation is passive: it never alters timing, buffer
	// release, or delivery.
	Observer func(TxRecord)

	// DroppedFrames counts frames lost on the wire (InjectLoss plus frames
	// the Interceptor returned no deliveries for).
	DroppedFrames uint64

	// RefusedSends counts posts rejected by InjectSendErr.
	RefusedSends uint64

	// RxFCSErrors counts arriving frames discarded because their contents
	// no longer matched the transmit-side frame check sequence (wire
	// corruption detected by the receiving NIC).
	RxFCSErrors uint64

	// Stats. TxFrames/TxBytes count frames *posted* (accepted by the
	// hardware), whether or not they survive the wire; use
	// DeliveredFrames/DeliveredBytes for "reached the peer intact".
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64
	TxSGEntries        uint64

	// DeliveredFrames/DeliveredBytes count frames that arrived at the peer
	// intact — after InjectLoss, Interceptor drops, and FCS checks — from
	// the sender's perspective. Duplicated copies each count once (they are
	// distinct arrivals). Goodput-style accounting must use these, not
	// TxFrames/TxBytes, which are charged at post time before any wire
	// fault can intervene.
	DeliveredFrames uint64
	DeliveredBytes  uint64

	// TxDoorbells counts doorbell rings: one per Send, one per MaxTxBurst
	// chunk in SendBatch. The amortization the batched datapath buys is
	// visible as TxDoorbells < TxFrames.
	TxDoorbells uint64

	// txPool and rxPool recycle the per-frame transmit and delivery state
	// (each op carries its callback closure, bound once at creation, so a
	// steady-state send schedules zero new closures). Both pools are only
	// touched from this port's engine goroutine: tx ops live from post to
	// DMA completion, and rx ops are used only on the same-engine delivery
	// fast path (cross-shard deliveries fall back to a fresh closure — the
	// pool must not be touched from the peer's shard).
	txPool []*txOp
	rxPool []*rxOp

	// dataPool recycles assembled-frame buffers. A frame buffer is handed
	// to the observer, the loss injector, and the peer's handler, none of
	// which may keep it past the call; once the same-engine delivery
	// returns (or the frame is dropped at the sender), the buffer goes
	// back here. Deliveries that cross a shard boundary or pass through an
	// interceptor are never recycled — their lifetime is not visible from
	// this goroutine.
	dataPool [][]byte

	// RetainsRx marks that this port's handler legitimately keeps
	// Frame.Data beyond the handler call — a store-and-forward switch
	// queuing the frame for egress. Senders then leave delivered buffers
	// to the garbage collector instead of recycling them.
	RetainsRx bool
}

// getData returns a zero-length frame buffer with at least total capacity,
// reusing a recycled one when it is big enough.
func (p *Port) getData(total int) []byte {
	if k := len(p.dataPool); k > 0 {
		b := p.dataPool[k-1]
		p.dataPool[k-1] = nil
		p.dataPool = p.dataPool[:k-1]
		if cap(b) >= total {
			return b[:0]
		}
		// Too small for this frame: drop it; the pool converges to the
		// run's largest frame size.
	}
	return make([]byte, 0, total)
}

func (p *Port) putData(b []byte) { p.dataPool = append(p.dataPool, b) }

// txOp is the in-flight state of one posted frame between Send and DMA
// completion. The gather list is copied in (callers may reuse their entry
// slices immediately after posting).
type txOp struct {
	p       *Port
	entries []SGEntry
	total   int
	sentAt  sim.Time
	dmaDone sim.Time
	txDone  sim.Time
	run     func() // bound once: op.dmaComplete
}

// rxOp is the pooled delivery of one frame on the same-engine fast path.
// The embedded Frame is handed to the receive handler by pointer and
// reused afterwards (see Handler).
type rxOp struct {
	p     *Port // sending port: owns the pool, writes Delivered* stats
	frame Frame
	run   func() // bound once: op.deliver
}

func (p *Port) getTxOp() *txOp {
	if n := len(p.txPool); n > 0 {
		op := p.txPool[n-1]
		p.txPool[n-1] = nil
		p.txPool = p.txPool[:n-1]
		return op
	}
	op := &txOp{p: p}
	op.run = op.dmaComplete
	return op
}

func (p *Port) recycleTxOp(op *txOp) {
	clear(op.entries) // drop buffer and closure references promptly
	op.entries = op.entries[:0]
	p.txPool = append(p.txPool, op)
}

func (p *Port) getRxOp() *rxOp {
	if n := len(p.rxPool); n > 0 {
		op := p.rxPool[n-1]
		p.rxPool[n-1] = nil
		p.rxPool = p.rxPool[:n-1]
		return op
	}
	op := &rxOp{p: p}
	op.run = op.deliver
	return op
}

// Link connects two new ports with the given profiles and one-way
// propagation delay (wire + switch).
func Link(eng *sim.Engine, a, b Profile, propagation sim.Time) (*Port, *Port) {
	return LinkOn(eng, eng, a, b, propagation)
}

// LinkOn is Link with the two ends on (possibly) different engines — the
// partitioned-mode topology builder puts each end on its partition's shard.
// Deliveries are scheduled on the *receiving* port's engine via
// sim.AtFrom, which is the identical call when both ends share one engine.
// The propagation delay is the link's contribution to the partition
// lookahead: it must be ≥ the coordinator's lookahead bound for the
// conservative windows to be sound (sim.Engine panics on a violation).
func LinkOn(engA, engB *sim.Engine, a, b Profile, propagation sim.Time) (*Port, *Port) {
	pa := &Port{eng: engA, prof: a, propag: propagation}
	pb := &Port{eng: engB, prof: b, propag: propagation}
	pa.peer = pb
	pb.peer = pa
	return pa, pb
}

// Profile returns the port's NIC profile.
func (p *Port) Profile() Profile { return p.prof }

// SetHandler installs the receive callback. Frames arriving with no handler
// are dropped.
func (p *Port) SetHandler(h Handler) { p.handler = h }

// ErrTooManyEntries is returned when a gather list exceeds the NIC limit.
type ErrTooManyEntries struct {
	Entries, Max int
}

func (e *ErrTooManyEntries) Error() string {
	return fmt.Sprintf("nic: %d scatter-gather entries exceeds hardware limit %d", e.Entries, e.Max)
}

// doorbellNs returns the per-doorbell DMA occupancy: the explicit
// DoorbellNs knob if set, else PacketOccupancyNs (the default profiles fold
// the doorbell cost into the per-packet cost). A negative DoorbellNs
// (ExplicitZero) means a genuinely free doorbell — without the sentinel a
// zero-cost doorbell was indistinguishable from "unset" and silently
// charged the per-packet fallback.
func (p *Port) doorbellNs() float64 {
	if p.prof.DoorbellNs < 0 {
		return 0
	}
	if p.prof.DoorbellNs > 0 {
		return p.prof.DoorbellNs
	}
	return p.prof.PacketOccupancyNs
}

// Send posts a frame described by a gather list. The NIC asynchronously:
//  1. gathers the entries over PCIe (DMA engine is a FIFO resource),
//  2. fires each entry's Release when its data has been read,
//  3. serializes the frame onto the wire (the wire is a FIFO resource),
//  4. delivers it to the peer after the propagation delay.
//
// The frame contents are snapshotted at gather completion, consistent with
// hardware: mutating a buffer before DMA finishes is a race the paper's
// safety model explicitly does not protect against.
func (p *Port) Send(entries []SGEntry) error {
	p.TxDoorbells++
	return p.send(entries, p.doorbellNs())
}

// SendBatch posts a burst of frames under amortized doorbells: frames are
// chunked by the profile's MaxTxBurst, and only the first frame of each
// chunk pays the per-doorbell DMA occupancy — the rest issue back-to-back.
// Frames are posted in order; on error it returns how many frames were
// posted before the failing one (the failing frame and everything after it
// are untouched — no buffer references taken, no releases pending). An
// empty batch is a no-op.
func (p *Port) SendBatch(frames [][]SGEntry) (int, error) {
	if len(frames) == 0 {
		return 0, nil
	}
	burst := p.prof.MaxTxBurst
	if burst < 1 {
		burst = 1
	}
	for i, f := range frames {
		db := 0.0
		if i%burst == 0 {
			p.TxDoorbells++
			db = p.doorbellNs()
		}
		if err := p.send(f, db); err != nil {
			return i, err
		}
	}
	return len(frames), nil
}

// send posts one frame charging doorbellNs of per-doorbell DMA occupancy
// (the full cost for unbatched sends and chunk leaders, zero for the
// follower frames of a batch).
func (p *Port) send(entries []SGEntry, doorbellNs float64) error {
	if len(entries) == 0 {
		return fmt.Errorf("nic: empty gather list")
	}
	if len(entries) > p.prof.MaxSGEntries {
		return &ErrTooManyEntries{Entries: len(entries), Max: p.prof.MaxSGEntries}
	}
	if p.InjectSendErr != nil {
		if err := p.InjectSendErr(); err != nil {
			p.RefusedSends++
			return err
		}
	}
	total := 0
	for _, e := range entries {
		total += len(e.Data)
	}
	now := p.eng.Now()
	p.TxFrames++
	p.TxBytes += uint64(total)
	p.TxSGEntries += uint64(len(entries))

	// DMA engine occupancy (pipeline issue rate) vs assembly latency: the
	// engine frees up after the occupancy, while the frame finishes
	// assembling after the additional pipelined latency.
	occupancy := sim.FromNanos(doorbellNs +
		p.prof.EntryOccupancyNs*float64(len(entries)) +
		float64(total)*8/p.prof.DMAGbps)
	latency := sim.FromNanos(p.prof.PerPacketNs +
		p.prof.PerEntryDMANs*float64(len(entries)))
	dmaStart := max(now, p.dmaFree)
	p.dmaFree = dmaStart + occupancy
	dmaDone := dmaStart + occupancy + latency

	// Wire occupancy: frame serialization at line rate.
	wireTime := sim.FromNanos(float64(total) * 8 / p.prof.LinkGbps)
	txStart := max(dmaDone, p.txFree)
	txDone := txStart + wireTime
	p.txFree = txDone

	// Hand the frame to a pooled tx op. The gather list is copied at post
	// time — consistent with hardware reading descriptors at the doorbell —
	// so callers may reuse their entry slice (not the referenced Data)
	// immediately after send returns.
	op := p.getTxOp()
	op.entries = append(op.entries[:0], entries...)
	op.total = total
	op.sentAt = now
	op.dmaDone = dmaDone
	op.txDone = txDone
	p.eng.At(dmaDone, op.run)
	return nil
}

// dmaComplete runs at DMA-completion time: snapshot the frame exactly when
// the hardware has read it, release the buffers, then route the frame to
// the wire (loss injection, interception) and schedule delivery.
func (op *txOp) dmaComplete() {
	p := op.p
	data := p.getData(op.total)
	for i := range op.entries {
		data = append(data, op.entries[i].Data...)
	}
	for i := range op.entries {
		e := &op.entries[i]
		if e.Release != nil {
			e.Release()
		}
		if e.Rel != nil {
			e.Rel.ReleaseSG(e.RelArg)
		}
	}
	sentAt, dmaDone, txDone := op.sentAt, op.dmaDone, op.txDone
	total, nEntries := op.total, len(op.entries)
	// Everything the rest of the path needs is copied out; recycling here
	// keeps the pool at max-in-flight size.
	p.recycleTxOp(op)

	observe := func(dropped bool) {
		if p.Observer != nil {
			p.Observer(TxRecord{
				Posted: sentAt, DMADone: dmaDone, TxDone: txDone,
				DeliverAt: txDone + p.propag,
				Bytes:     total, Entries: nEntries, Data: data,
				Dropped: dropped,
			})
		}
	}
	if p.InjectLoss != nil && p.InjectLoss(data) {
		p.DroppedFrames++
		observe(true)
		p.putData(data)
		return
	}
	peer := p.peer
	if p.Interceptor == nil {
		observe(false)
		// Delivery runs on the receiver's engine. On the same engine the
		// pooled rx op carries the frame with no new closure; across
		// partitions it crosses into the peer shard's inbox as a fresh
		// closure (the rx pool is single-goroutine and must not be recycled
		// from the peer's shard). Either way the sender-side stats the
		// delivery bumps (DeliveredFrames/Bytes) are written only by the
		// peer's shard, disjoint from the fields this path writes.
		if peer.eng == p.eng {
			rop := p.getRxOp()
			rop.frame = Frame{Data: data, SentAt: sentAt}
			p.eng.At(txDone+p.propag, rop.run)
		} else {
			peer.eng.AtFrom(p.eng, txDone+p.propag, func() { p.arrive(data, sentAt) })
		}
		return
	}
	// The hardware computed the FCS over the pristine frame; each wire
	// copy is re-checked on arrival so corruption injected by the
	// interceptor is discarded by the receiving NIC. (Interception is the
	// cold fault path; it keeps plain closures.)
	fcs := frameFCS(data)
	ds := p.Interceptor(data)
	observe(len(ds) == 0)
	if len(ds) == 0 {
		p.DroppedFrames++
		return
	}
	frameWire := sim.FromNanos(float64(total) * 8 / p.prof.LinkGbps)
	for di, d := range ds {
		extra := d.Delay
		if extra < 0 {
			extra = 0
		}
		depart := txDone
		if di > 0 {
			// A duplicated copy is a real extra frame: it serializes
			// on the wire after whatever the port has already queued,
			// consuming link bandwidth like any other transmission.
			// (Before this, extra copies departed at txDone without
			// touching txFree — duplicates cost zero bandwidth and
			// soak runs understated congestion.)
			start := max(p.txFree, txDone)
			p.txFree = start + frameWire
			depart = p.txFree
		}
		frame := d.Data
		peer.eng.AtFrom(p.eng, depart+p.propag+extra, func() {
			if frameFCS(frame) != fcs {
				peer.RxFCSErrors++
				return
			}
			p.arrive(frame, sentAt)
		})
	}
}

// arrive delivers one intact frame to the peer's handler, charging both
// ends' delivery stats. It runs on the peer's engine.
func (p *Port) arrive(frame []byte, sentAt sim.Time) {
	peer := p.peer
	p.DeliveredFrames++
	p.DeliveredBytes += uint64(len(frame))
	peer.RxFrames++
	peer.RxBytes += uint64(len(frame))
	if peer.handler != nil {
		peer.handler(&Frame{Data: frame, SentAt: sentAt})
	}
}

// deliver is the pooled same-engine delivery: identical to arrive but the
// Frame struct is reused across deliveries.
func (op *rxOp) deliver() {
	p := op.p
	peer := p.peer
	p.DeliveredFrames++
	p.DeliveredBytes += uint64(len(op.frame.Data))
	peer.RxFrames++
	peer.RxBytes += uint64(len(op.frame.Data))
	data := op.frame.Data
	if peer.handler != nil {
		peer.handler(&op.frame)
	}
	if !peer.RetainsRx {
		p.putData(data)
	}
	op.frame = Frame{}
	p.rxPool = append(p.rxPool, op)
}

func max(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
