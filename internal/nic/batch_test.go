package nic

import (
	"testing"

	"cornflakes/internal/sim"
)

// TestSendBatchEmpty: an empty batch is a no-op — no doorbell, no frames.
func TestSendBatchEmpty(t *testing.T) {
	eng := sim.NewEngine()
	a, _ := newPair(eng)
	n, err := a.SendBatch(nil)
	if n != 0 || err != nil {
		t.Fatalf("SendBatch(nil) = (%d, %v), want (0, nil)", n, err)
	}
	if a.TxFrames != 0 || a.TxDoorbells != 0 {
		t.Errorf("empty batch posted work: frames=%d doorbells=%d", a.TxFrames, a.TxDoorbells)
	}
}

// TestSendBatchOfOneMatchesSend: a one-frame batch must be indistinguishable
// from Send — same delivery time, same counters — so the B=1 adaptive floor
// really is the unbatched path.
func TestSendBatchOfOneMatchesSend(t *testing.T) {
	run := func(batch bool) (sim.Time, uint64) {
		eng := sim.NewEngine()
		a, b := newPair(eng)
		var at sim.Time
		b.SetHandler(func(f *Frame) { at = eng.Now() })
		entries := []SGEntry{{Data: make([]byte, 1500)}}
		if batch {
			if n, err := a.SendBatch([][]SGEntry{entries}); n != 1 || err != nil {
				t.Fatalf("SendBatch = (%d, %v)", n, err)
			}
		} else {
			if err := a.Send(entries); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()
		return at, a.TxDoorbells
	}
	sendAt, sendDB := run(false)
	batchAt, batchDB := run(true)
	if sendAt == 0 || batchAt != sendAt {
		t.Errorf("arrival: Send %v, SendBatch-of-1 %v", sendAt, batchAt)
	}
	if sendDB != 1 || batchDB != 1 {
		t.Errorf("doorbells: Send %d, SendBatch-of-1 %d, want 1 each", sendDB, batchDB)
	}
}

// TestSendBatchAmortizesDoorbells: a burst within MaxTxBurst pays one
// doorbell; its last frame departs earlier than the same frames sent
// individually, by exactly (N−1) doorbells of DMA occupancy when the DMA
// engine is the bottleneck.
func TestSendBatchAmortizesDoorbells(t *testing.T) {
	// Tiny frames on a CX-6 with a fast (1 Tbps) wire: frame spacing is
	// DMA-bound in both runs — even with the doorbell amortized away the
	// residual per-frame occupancy (2 + 64*8/220 ≈ 4.3 ns) exceeds the
	// 0.5 ns wire time — so the doorbell saving is exactly visible in the
	// last arrival time.
	const frames = 16
	prof := MellanoxCX6()
	prof.LinkGbps = 1000
	run := func(batch bool) (sim.Time, uint64) {
		eng := sim.NewEngine()
		a, b := Link(eng, prof, prof, sim.FromNanos(1000))
		var last sim.Time
		var got int
		b.SetHandler(func(f *Frame) { got++; last = eng.Now() })
		var lists [][]SGEntry
		for i := 0; i < frames; i++ {
			lists = append(lists, []SGEntry{{Data: make([]byte, 64)}})
		}
		if batch {
			if n, err := a.SendBatch(lists); n != frames || err != nil {
				t.Fatalf("SendBatch = (%d, %v)", n, err)
			}
		} else {
			for _, l := range lists {
				if err := a.Send(l); err != nil {
					t.Fatal(err)
				}
			}
		}
		eng.Run()
		if got != frames {
			t.Fatalf("delivered %d/%d", got, frames)
		}
		return last, a.TxDoorbells
	}
	soloLast, soloDB := run(false)
	batchLast, batchDB := run(true)
	if soloDB != frames || batchDB != 1 {
		t.Errorf("doorbells: solo %d (want %d), batch %d (want 1)", soloDB, frames, batchDB)
	}
	saved := soloLast - batchLast
	want := sim.FromNanos(float64(frames-1) * prof.PacketOccupancyNs)
	if saved != want {
		t.Errorf("batch saved %v, want exactly %v ((N-1) doorbells)", saved, want)
	}
}

// TestSendBatchChunksByMaxTxBurst: a burst larger than MaxTxBurst pays one
// doorbell per chunk.
func TestSendBatchChunksByMaxTxBurst(t *testing.T) {
	prof := MellanoxCX6()
	prof.MaxTxBurst = 4
	eng := sim.NewEngine()
	a, _ := Link(eng, prof, MellanoxCX6(), 0)
	var lists [][]SGEntry
	for i := 0; i < 10; i++ {
		lists = append(lists, []SGEntry{{Data: []byte{byte(i)}}})
	}
	if n, err := a.SendBatch(lists); n != 10 || err != nil {
		t.Fatalf("SendBatch = (%d, %v)", n, err)
	}
	if a.TxDoorbells != 3 { // ceil(10/4)
		t.Errorf("TxDoorbells = %d, want 3 for 10 frames at burst 4", a.TxDoorbells)
	}
}

// TestSendBatchStopsAtBadFrame: a frame exceeding MaxSGEntries mid-burst
// stops the batch there — earlier frames are posted, the bad frame and
// everything after it are untouched (no releases pending).
func TestSendBatchStopsAtBadFrame(t *testing.T) {
	prof := MellanoxCX6()
	prof.MaxSGEntries = 2
	eng := sim.NewEngine()
	a, b := Link(eng, prof, MellanoxCX6(), 0)
	var delivered int
	b.SetHandler(func(f *Frame) { delivered++ })
	released := make([]bool, 3)
	mk := func(i, entries int) []SGEntry {
		var l []SGEntry
		for j := 0; j < entries; j++ {
			e := SGEntry{Data: []byte{byte(i)}}
			if j == 0 {
				idx := i
				e.Release = func() { released[idx] = true }
			}
			l = append(l, e)
		}
		return l
	}
	batch := [][]SGEntry{mk(0, 1), mk(1, 3), mk(2, 1)} // middle frame over the limit
	n, err := a.SendBatch(batch)
	if n != 1 {
		t.Errorf("posted %d frames, want 1 (stop at the bad frame)", n)
	}
	if _, ok := err.(*ErrTooManyEntries); !ok {
		t.Errorf("error %T %v, want *ErrTooManyEntries", err, err)
	}
	eng.Run()
	if delivered != 1 {
		t.Errorf("delivered %d frames, want 1", delivered)
	}
	if !released[0] || released[1] || released[2] {
		t.Errorf("releases %v: only the posted frame's buffers may be released", released)
	}
	if a.TxFrames != 1 {
		t.Errorf("TxFrames = %d, want 1", a.TxFrames)
	}
}

// TestDeliveredCountersUnderLoss pins the satellite-1 fix: TxFrames/TxBytes
// count posts, DeliveredFrames/DeliveredBytes count intact arrivals, and
// under injected loss the two diverge by exactly the dropped frames.
func TestDeliveredCountersUnderLoss(t *testing.T) {
	eng := sim.NewEngine()
	a, b := newPair(eng)
	b.SetHandler(func(f *Frame) {})
	n := 0
	a.InjectLoss = func([]byte) bool {
		n++
		return n%2 == 0 // drop every second frame
	}
	const frames, size = 10, 100
	for i := 0; i < frames; i++ {
		if err := a.Send([]SGEntry{{Data: make([]byte, size)}}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if a.TxFrames != frames || a.TxBytes != frames*size {
		t.Errorf("post counters: frames=%d bytes=%d", a.TxFrames, a.TxBytes)
	}
	if a.DeliveredFrames != frames/2 || a.DeliveredBytes != frames/2*size {
		t.Errorf("delivered: frames=%d bytes=%d, want %d/%d",
			a.DeliveredFrames, a.DeliveredBytes, frames/2, frames/2*size)
	}
	if a.DroppedFrames != frames/2 {
		t.Errorf("DroppedFrames = %d, want %d", a.DroppedFrames, frames/2)
	}
	if a.TxFrames != a.DeliveredFrames+a.DroppedFrames {
		t.Errorf("conservation: tx=%d delivered=%d dropped=%d",
			a.TxFrames, a.DeliveredFrames, a.DroppedFrames)
	}
	if b.RxFrames != a.DeliveredFrames {
		t.Errorf("peer RxFrames=%d, sender DeliveredFrames=%d", b.RxFrames, a.DeliveredFrames)
	}
}

// TestDuplicateOccupiesWire pins the satellite-2 fix: a frame copy created
// by the Interceptor serializes on the wire like any other frame, delaying
// traffic behind it by exactly one wire time.
func TestDuplicateOccupiesWire(t *testing.T) {
	const size = 9000
	run := func(dup bool) ([]sim.Time, uint64) {
		eng := sim.NewEngine()
		a, b := newPair(eng)
		var arrivals []sim.Time
		b.SetHandler(func(f *Frame) { arrivals = append(arrivals, eng.Now()) })
		if dup {
			first := true
			a.Interceptor = func(data []byte) []Delivery {
				if first {
					first = false
					return []Delivery{{Data: data}, {Data: data}} // duplicate frame 1
				}
				return []Delivery{{Data: data}}
			}
		}
		a.Send([]SGEntry{{Data: make([]byte, size)}})
		a.Send([]SGEntry{{Data: make([]byte, size)}})
		eng.Run()
		return arrivals, b.RxFrames
	}
	base, baseRx := run(false)
	dupped, dupRx := run(true)
	if len(base) != 2 || baseRx != 2 {
		t.Fatalf("baseline delivered %d frames", len(base))
	}
	if len(dupped) != 3 || dupRx != 3 {
		t.Fatalf("dup run delivered %d frames, want 3 (two originals + one copy)", len(dupped))
	}
	// The original copies of frames 1 and 2 are dupped[0] and dupped[2]
	// (the duplicate queued behind frame 2 on the wire).
	if dupped[0] != base[0] {
		t.Errorf("frame 1 original arrival moved: %v vs %v", dupped[0], base[0])
	}
	if dupped[1] != base[1] {
		t.Errorf("frame 2 arrival moved: %v vs %v", dupped[1], base[1])
	}
	wire := sim.FromNanos(size * 8 / 100.0)
	if got := dupped[2] - dupped[1]; got != wire {
		t.Errorf("duplicate trails frame 2 by %v, want exactly one wire time %v", got, wire)
	}
}
