package nic

import (
	"bytes"
	"testing"

	"cornflakes/internal/sim"
)

func newPair(eng *sim.Engine) (*Port, *Port) {
	return Link(eng, MellanoxCX6(), MellanoxCX6(), sim.FromNanos(1000))
}

func TestSendDeliversGatheredBytes(t *testing.T) {
	eng := sim.NewEngine()
	a, b := newPair(eng)
	var got []byte
	b.SetHandler(func(f *Frame) { got = append([]byte(nil), f.Data...) })
	err := a.Send([]SGEntry{
		{Data: []byte("hello ")},
		{Data: []byte("scatter ")},
		{Data: []byte("gather")},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !bytes.Equal(got, []byte("hello scatter gather")) {
		t.Errorf("delivered %q", got)
	}
	if a.TxFrames != 1 || b.RxFrames != 1 {
		t.Errorf("frames: tx=%d rx=%d", a.TxFrames, b.RxFrames)
	}
	if a.TxSGEntries != 3 {
		t.Errorf("TxSGEntries = %d, want 3", a.TxSGEntries)
	}
}

func TestSendEntryLimit(t *testing.T) {
	eng := sim.NewEngine()
	a, _ := Link(eng, IntelE810(), IntelE810(), 0)
	entries := make([]SGEntry, 9)
	for i := range entries {
		entries[i] = SGEntry{Data: []byte{byte(i)}}
	}
	err := a.Send(entries)
	var tooMany *ErrTooManyEntries
	if err == nil {
		t.Fatal("9 entries accepted by E810 (limit 8)")
	}
	if e, ok := err.(*ErrTooManyEntries); ok {
		tooMany = e
	} else {
		t.Fatalf("error type %T", err)
	}
	if tooMany.Entries != 9 || tooMany.Max != 8 {
		t.Errorf("error fields %+v", tooMany)
	}
	if err := a.Send(entries[:8]); err != nil {
		t.Errorf("8 entries rejected: %v", err)
	}
}

func TestSendEmpty(t *testing.T) {
	eng := sim.NewEngine()
	a, _ := newPair(eng)
	if err := a.Send(nil); err == nil {
		t.Error("empty gather list accepted")
	}
}

func TestReleaseFiresAfterDMARead(t *testing.T) {
	eng := sim.NewEngine()
	a, b := newPair(eng)
	var releasedAt, deliveredAt sim.Time
	b.SetHandler(func(f *Frame) { deliveredAt = eng.Now() })
	a.Send([]SGEntry{{
		Data:    make([]byte, 1024),
		Release: func() { releasedAt = eng.Now() },
	}})
	eng.Run()
	if releasedAt == 0 {
		t.Fatal("Release never fired")
	}
	if deliveredAt <= releasedAt {
		t.Errorf("delivery (%v) should be after DMA completion (%v)", deliveredAt, releasedAt)
	}
	if releasedAt <= 0 {
		t.Error("release should take nonzero simulated time")
	}
}

func TestSnapshotAtDMATime(t *testing.T) {
	eng := sim.NewEngine()
	a, b := newPair(eng)
	buf := []byte("original")
	var got []byte
	b.SetHandler(func(f *Frame) { got = f.Data })
	a.Send([]SGEntry{{Data: buf, Release: func() {
		// Mutation after DMA completes must not affect the wire bytes.
		copy(buf, "MUTATED!")
	}}})
	eng.Run()
	if string(got) != "original" {
		t.Errorf("frame saw post-DMA mutation: %q", got)
	}
}

func TestLinkSerializationDelay(t *testing.T) {
	arrival := func(size int) sim.Time {
		eng := sim.NewEngine()
		a, b := Link(eng, MellanoxCX6(), MellanoxCX6(), sim.FromNanos(1000))
		var at sim.Time
		b.SetHandler(func(f *Frame) { at = eng.Now() })
		a.Send([]SGEntry{{Data: make([]byte, size)}})
		eng.Run()
		if at == 0 {
			t.Fatalf("%dB frame never delivered", size)
		}
		return at
	}
	small, large := arrival(64), arrival(9000)
	if large <= small {
		t.Errorf("9000B frame (%v) should arrive later than 64B frame (%v)", large, small)
	}
	// 9000 B at 100 Gbps is 720 ns of wire time; delta should be at least
	// the extra serialization plus DMA time.
	if delta := large - small; delta < sim.FromNanos(700) {
		t.Errorf("delta %v too small for serialization delay", delta)
	}
}

func TestBackToBackFramesQueueOnWire(t *testing.T) {
	eng := sim.NewEngine()
	a, b := newPair(eng)
	var arrivals []sim.Time
	b.SetHandler(func(f *Frame) { arrivals = append(arrivals, eng.Now()) })
	for i := 0; i < 3; i++ {
		a.Send([]SGEntry{{Data: make([]byte, 9000)}})
	}
	eng.Run()
	if len(arrivals) != 3 {
		t.Fatalf("delivered %d", len(arrivals))
	}
	wire := sim.FromNanos(9000 * 8 / 100.0)
	for i := 1; i < len(arrivals); i++ {
		if gap := arrivals[i] - arrivals[i-1]; gap < wire {
			t.Errorf("frames %d,%d arrive %v apart, want >= wire time %v", i-1, i, gap, wire)
		}
	}
}

func TestMoreEntriesMoreLatency(t *testing.T) {
	// The per-entry PCIe cost should make a 32-entry frame slower than a
	// 1-entry frame of the same size.
	measure := func(entries int) sim.Time {
		eng := sim.NewEngine()
		a, b := newPair(eng)
		var at sim.Time
		b.SetHandler(func(f *Frame) { at = eng.Now() })
		total := 2048
		var list []SGEntry
		per := total / entries
		for i := 0; i < entries; i++ {
			list = append(list, SGEntry{Data: make([]byte, per)})
		}
		a.Send(list)
		eng.Run()
		return at
	}
	if measure(32) <= measure(1) {
		t.Error("32-entry gather should take longer than 1-entry")
	}
}

func TestNoHandlerDropsFrame(t *testing.T) {
	eng := sim.NewEngine()
	a, b := newPair(eng)
	a.Send([]SGEntry{{Data: []byte("x")}})
	eng.Run() // must not panic
	if b.RxFrames != 1 {
		t.Errorf("RxFrames = %d (frame counted even when dropped)", b.RxFrames)
	}
}

func TestBidirectional(t *testing.T) {
	eng := sim.NewEngine()
	a, b := newPair(eng)
	var aGot, bGot string
	a.SetHandler(func(f *Frame) { aGot = string(f.Data) })
	b.SetHandler(func(f *Frame) { bGot = string(f.Data) })
	a.Send([]SGEntry{{Data: []byte("to-b")}})
	b.Send([]SGEntry{{Data: []byte("to-a")}})
	eng.Run()
	if aGot != "to-a" || bGot != "to-b" {
		t.Errorf("aGot=%q bGot=%q", aGot, bGot)
	}
}

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{MellanoxCX5Ex(), MellanoxCX6(), IntelE810()} {
		if p.MaxSGEntries <= 0 || p.LinkGbps <= 0 || p.Name == "" {
			t.Errorf("invalid profile %+v", p)
		}
	}
	if IntelE810().MaxSGEntries != 8 {
		t.Error("E810 must have the 8-entry SG limit from §6.3")
	}
}

// TestDoorbellExplicitZero is the profile-audit half of the explicit-zero
// fix: DoorbellNs == 0 means "unset, fold the doorbell into the per-packet
// cost", so a genuinely free doorbell (an offloaded or batched-away ring)
// was silently charged PacketOccupancyNs. The ExplicitZero sentinel must
// remove exactly that occupancy from the DMA stage.
func TestDoorbellExplicitZero(t *testing.T) {
	deliver := func(doorbellNs float64) sim.Time {
		eng := sim.NewEngine()
		prof := MellanoxCX6()
		prof.DoorbellNs = doorbellNs
		a, b := Link(eng, prof, prof, sim.FromNanos(1000))
		var at sim.Time
		b.SetHandler(func(f *Frame) { at = eng.Now() })
		if err := a.Send([]SGEntry{{Data: make([]byte, 256)}}); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return at
	}
	unset := deliver(0)                                 // folds into PacketOccupancyNs
	pinned := deliver(MellanoxCX6().PacketOccupancyNs)  // explicit fold
	free := deliver(ExplicitZero)                       // genuinely free
	if unset != pinned {
		t.Errorf("unset DoorbellNs delivered at %v, explicit fallback at %v; zero must mean the per-packet fold", unset, pinned)
	}
	if want := unset - sim.FromNanos(MellanoxCX6().PacketOccupancyNs); free != want {
		t.Errorf("ExplicitZero doorbell delivered at %v, want %v (occupancy removed)", free, want)
	}
}
