package nic

import (
	"testing"

	"cornflakes/internal/sim"
)

// The DMA model separates pipeline occupancy from assembly latency: a
// stream of frames must sustain the occupancy rate even though each frame
// individually takes far longer to assemble.
func TestDMAOccupancyVsLatency(t *testing.T) {
	eng := sim.NewEngine()
	prof := MellanoxCX6()
	a, b := Link(eng, prof, prof, 0)
	var arrivals []sim.Time
	b.SetHandler(func(f *Frame) { arrivals = append(arrivals, eng.Now()) })

	const frames = 20
	for i := 0; i < frames; i++ {
		a.Send([]SGEntry{{Data: make([]byte, 1024)}})
	}
	eng.Run()
	if len(arrivals) != frames {
		t.Fatalf("delivered %d frames", len(arrivals))
	}
	// First-frame latency includes the full assembly pipeline.
	firstLatency := arrivals[0]
	wantLatency := sim.FromNanos(prof.PerPacketNs + prof.PerEntryDMANs)
	if firstLatency < wantLatency {
		t.Errorf("first frame arrived at %v, before the assembly latency %v", firstLatency, wantLatency)
	}
	// Steady-state spacing is bounded by max(occupancy, wire time), far
	// below the assembly latency.
	occupancy := prof.PacketOccupancyNs + prof.EntryOccupancyNs + 1024*8/prof.DMAGbps
	wire := 1024 * 8 / prof.LinkGbps
	bound := occupancy
	if wire > bound {
		bound = wire
	}
	for i := frames / 2; i < frames; i++ {
		gap := (arrivals[i] - arrivals[i-1]).Nanoseconds()
		if gap > bound*1.2 {
			t.Fatalf("steady-state gap %v ns exceeds pipeline bound %v ns", gap, bound)
		}
	}
}

// Determinism: identical schedules produce identical delivery timelines.
func TestNICDeterminism(t *testing.T) {
	run := func() []sim.Time {
		eng := sim.NewEngine()
		a, b := Link(eng, MellanoxCX5Ex(), IntelE810(), sim.FromNanos(777))
		var times []sim.Time
		b.SetHandler(func(f *Frame) { times = append(times, eng.Now()) })
		for i := 1; i <= 10; i++ {
			size := i * 333
			eng.After(sim.Time(i)*sim.Microsecond, func() {
				a.Send([]SGEntry{{Data: make([]byte, size)}})
			})
		}
		eng.Run()
		return times
	}
	x, y := run(), run()
	if len(x) != len(y) {
		t.Fatal("different delivery counts")
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("delivery %d differs: %v vs %v", i, x[i], y[i])
		}
	}
}
