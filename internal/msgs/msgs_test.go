// Tests for the cfc-generated message wrappers: the generated code must
// round-trip through the real stack exactly like the dynamic API.
package msgs

import (
	"bytes"
	"testing"

	"cornflakes/internal/cachesim"
	"cornflakes/internal/core"
	"cornflakes/internal/costmodel"
	"cornflakes/internal/mem"
)

func testCtx() *core.Ctx {
	alloc := mem.NewAllocator()
	arena := mem.NewArena(64 << 10)
	meter := costmodel.NewMeter(costmodel.DefaultCPU(), cachesim.New(cachesim.DefaultConfig()))
	return core.NewCtx(alloc, arena, meter)
}

func TestGeneratedGetMRoundTrip(t *testing.T) {
	ctx := testCtx()
	val := ctx.Alloc.Alloc(1024)
	for i := range val.Bytes() {
		val.Bytes()[i] = byte(i)
	}
	m := NewGetM(ctx)
	m.SetId(42)
	m.AppendKeys(ctx.NewCFPtr([]byte("key-0")))
	m.AppendVals(ctx.NewCFPtr(val.Bytes()))

	data := core.Marshal(m.Obj())
	buf := ctx.Alloc.Alloc(len(data))
	copy(buf.Bytes(), data)
	got, err := DeserializeGetM(ctx, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Id() != 42 {
		t.Errorf("id = %d", got.Id())
	}
	if got.KeysLen() != 1 || string(got.Keys(0)) != "key-0" {
		t.Error("keys wrong")
	}
	if got.ValsLen() != 1 || !bytes.Equal(got.Vals(0), val.Bytes()) {
		t.Error("vals wrong")
	}
	got.Release()
	m.Release()
	if val.Refcount() != 1 {
		t.Errorf("refcount = %d", val.Refcount())
	}
}

func TestGeneratedNestedBatch(t *testing.T) {
	ctx := testCtx()
	b := NewBatch(ctx)
	b.SetId(7)
	for i := 0; i < 3; i++ {
		e := NewKVEntry(ctx)
		e.SetKey(ctx.NewCFPtr([]byte{byte('a' + i)}))
		e.SetVal(ctx.NewCFPtr(bytes.Repeat([]byte{byte(i)}, 100)))
		e.SetVersion(uint64(i * 10))
		b.AppendEntries(e)
	}
	data := core.Marshal(b.Obj())
	buf := ctx.Alloc.Alloc(len(data))
	copy(buf.Bytes(), data)
	got, err := DeserializeBatch(ctx, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Id() != 7 || got.EntriesLen() != 3 {
		t.Fatalf("batch header wrong: id=%d n=%d", got.Id(), got.EntriesLen())
	}
	for i := 0; i < 3; i++ {
		e := got.Entries(i)
		if string(e.Key()) != string([]byte{byte('a' + i)}) {
			t.Errorf("entry %d key wrong", i)
		}
		if e.Version() != uint64(i*10) {
			t.Errorf("entry %d version = %d", i, e.Version())
		}
		if !bytes.Equal(e.Val(), bytes.Repeat([]byte{byte(i)}, 100)) {
			t.Errorf("entry %d val wrong", i)
		}
	}
}

func TestGeneratedGetPutSchemasDistinct(t *testing.T) {
	if GetReqSchema == GetRespSchema || GetMSchema == BatchSchema {
		t.Error("schema singletons alias")
	}
	if GetMSchema.Name != "GetM" || len(GetMSchema.Fields) != 3 {
		t.Errorf("GetMSchema = %+v", GetMSchema)
	}
	if BatchSchema.Fields[1].Nested != KVEntrySchema {
		t.Error("Batch nested schema not resolved to KVEntrySchema")
	}
}
