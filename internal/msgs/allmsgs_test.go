package msgs

import (
	"bytes"
	"testing"

	"cornflakes/internal/core"
)

// Round-trip every generated message type through the real wire format,
// exercising the full generated accessor surface.

func marshalInto(t *testing.T, ctx *core.Ctx, obj core.Obj, schema *core.Schema) *core.Message {
	t.Helper()
	data := core.Marshal(obj)
	buf := ctx.Alloc.Alloc(len(data))
	copy(buf.Bytes(), data)
	m, err := ctx.Deserialize(schema, buf)
	if err != nil {
		t.Fatalf("deserialize %s: %v", schema.Name, err)
	}
	return m
}

func TestGetReqResp(t *testing.T) {
	ctx := testCtx()
	req := NewGetReq(ctx)
	req.SetId(11)
	req.SetKey(ctx.NewCFPtr([]byte("the-key")))
	got := GetReq{M: marshalInto(t, ctx, req.Obj(), GetReqSchema)}
	if got.Id() != 11 || string(got.Key()) != "the-key" {
		t.Errorf("GetReq round trip: id=%d key=%q", got.Id(), got.Key())
	}

	resp := NewGetResp(ctx)
	resp.SetId(11)
	resp.SetVal(ctx.NewCFPtr(bytes.Repeat([]byte{5}, 640)))
	gotR := GetResp{M: marshalInto(t, ctx, resp.Obj(), GetRespSchema)}
	if gotR.Id() != 11 || len(gotR.Val()) != 640 {
		t.Errorf("GetResp round trip: id=%d len=%d", gotR.Id(), len(gotR.Val()))
	}
	got.Release()
	gotR.Release()
}

func TestPutReqResp(t *testing.T) {
	ctx := testCtx()
	req := NewPutReq(ctx)
	req.SetId(12)
	req.SetKey(ctx.NewCFPtr([]byte("put-key")))
	req.SetVal(ctx.NewCFPtr([]byte("put-val")))
	got := PutReq{M: marshalInto(t, ctx, req.Obj(), PutReqSchema)}
	if got.Id() != 12 || string(got.Key()) != "put-key" || string(got.Val()) != "put-val" {
		t.Error("PutReq round trip wrong")
	}
	resp := NewPutResp(ctx)
	resp.SetId(12)
	resp.SetOk(1)
	gotR := PutResp{M: marshalInto(t, ctx, resp.Obj(), PutRespSchema)}
	if gotR.Id() != 12 || gotR.Ok() != 1 {
		t.Error("PutResp round trip wrong")
	}
}

func TestGetListReqResp(t *testing.T) {
	ctx := testCtx()
	req := NewGetListReq(ctx)
	req.SetId(13)
	req.SetKey(ctx.NewCFPtr([]byte("list-key")))
	req.SetIndex(4)
	got := GetListReq{M: marshalInto(t, ctx, req.Obj(), GetListReqSchema)}
	if got.Id() != 13 || string(got.Key()) != "list-key" || got.Index() != 4 {
		t.Error("GetListReq round trip wrong")
	}
	resp := NewGetListResp(ctx)
	resp.SetId(13)
	for i := 0; i < 5; i++ {
		resp.AppendVals(ctx.NewCFPtr(bytes.Repeat([]byte{byte(i)}, 100+i*200)))
	}
	gotR := GetListResp{M: marshalInto(t, ctx, resp.Obj(), GetListRespSchema)}
	if gotR.ValsLen() != 5 {
		t.Fatalf("vals len %d", gotR.ValsLen())
	}
	for i := 0; i < 5; i++ {
		v := gotR.Vals(i)
		if len(v) != 100+i*200 || v[0] != byte(i) {
			t.Errorf("val %d wrong (%d bytes)", i, len(v))
		}
	}
}

func TestKVEntryStandalone(t *testing.T) {
	ctx := testCtx()
	e := NewKVEntry(ctx)
	e.SetKey(ctx.NewCFPtr([]byte("entry-key")))
	e.SetVal(ctx.NewCFPtr([]byte("entry-val")))
	e.SetVersion(9000)
	got := KVEntry{M: marshalInto(t, ctx, e.Obj(), KVEntrySchema)}
	if string(got.Key()) != "entry-key" || string(got.Val()) != "entry-val" || got.Version() != 9000 {
		t.Error("KVEntry round trip wrong")
	}
}

func TestGetMFull(t *testing.T) {
	ctx := testCtx()
	m := NewGetM(ctx)
	m.SetId(77)
	for i := 0; i < 4; i++ {
		m.AppendKeys(ctx.NewCFPtr([]byte{byte('a' + i)}))
		m.AppendVals(ctx.NewCFPtr(bytes.Repeat([]byte{byte(i)}, 256<<i)))
	}
	got := GetM{M: marshalInto(t, ctx, m.Obj(), GetMSchema)}
	if got.Id() != 77 || got.KeysLen() != 4 || got.ValsLen() != 4 {
		t.Fatal("GetM structure wrong")
	}
	for i := 0; i < 4; i++ {
		if got.Keys(i)[0] != byte('a'+i) {
			t.Errorf("key %d wrong", i)
		}
		if len(got.Vals(i)) != 256<<i {
			t.Errorf("val %d len %d", i, len(got.Vals(i)))
		}
	}
}

func TestAllSchemasValid(t *testing.T) {
	for _, s := range []*core.Schema{
		GetReqSchema, GetRespSchema, GetMSchema, PutReqSchema, PutRespSchema,
		GetListReqSchema, GetListRespSchema, KVEntrySchema, BatchSchema,
	} {
		if err := s.Validate(); err != nil {
			t.Errorf("schema %s invalid: %v", s.Name, err)
		}
	}
}
